(* Tests for the out-of-core data path (lib/store): shard container
   round-trips, positioned corruption reports, per-shard deterministic
   generation, shard-backed dataset loading, and checkpoint/restore —
   including resume-equivalence of interrupted training runs in sim and
   parallel modes. *)

module Shard = Orion_store.Shard
module Gen = Orion_store.Gen
module Loader = Orion_store.Loader
module Checkpoint = Orion_store.Checkpoint
module Dist_array = Orion_dsm.Dist_array
module Verify = Orion_verify.Verify

let tc = Alcotest.test_case
let qc = QCheck_alcotest.to_alcotest
let () = Orion_apps.Registry.ensure ()

(* every test gets its own scratch directory under the system temp dir *)
let scratch =
  let n = ref 0 in
  fun prefix ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "orion-store-test-%d-%s-%d" (Unix.getpid ()) prefix !n)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let with_dir prefix f =
  let dir = scratch prefix in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* ------------------------------------------------------------------ *)
(* Shard container: write records, stream them back bitwise            *)
(* ------------------------------------------------------------------ *)

let write_shard ~dir ?(shard = 0) ?(num_shards = 1) ?(meta = []) records =
  let path = Shard.shard_path ~dir shard in
  Sys.mkdir dir 0o755;
  let w =
    Shard.create_writer ~path ~schema:"test-v1" ~shard ~num_shards ~seed:7
      ~meta ()
  in
  List.iter (fun r -> Shard.write_record w (Bytes.of_string r)) records;
  (path, Shard.close_writer w)

let qcheck_shard_roundtrip =
  QCheck.Test.make ~count:100 ~name:"shard codec round-trip (bitwise)"
    QCheck.(small_list string)
    (fun records ->
      with_dir "roundtrip" (fun dir ->
          let path, hdr = write_shard ~dir ~meta:[ ("k", "v") ] records in
          hdr.Shard.h_count = List.length records
          && (Shard.read_header path).Shard.h_meta = [ ("k", "v") ]
          &&
          let got =
            List.rev
              (Shard.fold path ~init:[] ~f:(fun acc b ->
                   Bytes.to_string b :: acc))
          in
          got = records))

let test_shard_header () =
  with_dir "header" (fun dir ->
      let path, _ =
        write_shard ~dir ~shard:0 ~num_shards:3
          ~meta:[ ("num_users", "12"); ("num_items", "5") ]
          [ "a"; "bb"; "" ]
      in
      let h = Shard.read_header path in
      Alcotest.(check string) "schema" "test-v1" h.Shard.h_schema;
      Alcotest.(check int) "shard" 0 h.Shard.h_shard;
      Alcotest.(check int) "num_shards" 3 h.Shard.h_num_shards;
      Alcotest.(check int) "seed" 7 h.Shard.h_seed;
      Alcotest.(check int) "count" 3 h.Shard.h_count;
      Alcotest.(check (list (pair string string)))
        "meta order preserved"
        [ ("num_users", "12"); ("num_items", "5") ]
        h.Shard.h_meta)

(* corruption must be rejected with the offset where the file stopped
   making sense, never silently decoded *)
let expect_corrupt what f =
  match f () with
  | _ -> Alcotest.failf "%s: corrupt shard was accepted" what
  | exception Shard.Corrupt { path; offset; reason } ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: positioned error (%s at %d: %s)" what path offset
           reason)
        true
        (path <> "" && offset >= 0 && reason <> "")

let test_shard_corruption () =
  with_dir "corrupt" (fun dir ->
      let path, _ = write_shard ~dir [ "hello"; "world"; "again" ] in
      let image = read_file path in
      let len = String.length image in
      (* truncation: chop mid-record / mid-footer *)
      List.iter
        (fun keep ->
          let p = Filename.concat dir "trunc.orshard" in
          write_file p (String.sub image 0 keep);
          expect_corrupt
            (Printf.sprintf "truncated to %d/%d bytes" keep len)
            (fun () -> Shard.fold p ~init:0 ~f:(fun n _ -> n + 1)))
        [ len - 1; len - 8; len - 15; 10 ];
      (* bit flip in a record body: caught by the CRC *)
      let flipped = Bytes.of_string image in
      let mid = (len / 2) + 1 in
      Bytes.set flipped mid (Char.chr (Char.code (Bytes.get flipped mid) lxor 1));
      let p = Filename.concat dir "flip.orshard" in
      write_file p (Bytes.to_string flipped);
      expect_corrupt "bit flip" (fun () ->
          Shard.fold p ~init:0 ~f:(fun n _ -> n + 1));
      (* wrong magic: rejected before any record is decoded *)
      let p2 = Filename.concat dir "magic.orshard" in
      write_file p2 ("XXXX" ^ String.sub image 4 (len - 4));
      expect_corrupt "bad magic" (fun () -> ignore (Shard.read_header p2)))

let test_writer_is_atomic () =
  with_dir "atomic" (fun dir ->
      Sys.mkdir dir 0o755;
      let path = Shard.shard_path ~dir 0 in
      let w =
        Shard.create_writer ~path ~schema:"test-v1" ~shard:0 ~num_shards:1
          ~seed:1 ()
      in
      Shard.write_record w (Bytes.of_string "partial");
      (* before close_writer only the temp file exists *)
      Alcotest.(check bool) "shard not yet published" false
        (Sys.file_exists path);
      Shard.discard_writer w;
      Alcotest.(check (list string)) "discard leaves nothing" []
        (Shard.list_shards dir))

(* ------------------------------------------------------------------ *)
(* Generators: deterministic and shard-independent                     *)
(* ------------------------------------------------------------------ *)

let small_ratings =
  Gen.Ratings
    {
      num_users = 50;
      num_items = 30;
      num_ratings = 600;
      skew = 1.1;
      rank = 4;
      noise = 0.1;
    }

let test_gen_shard_independent () =
  with_dir "full" (fun full_dir ->
      with_dir "solo" (fun solo_dir ->
          let seed = 99 and shards = 4 in
          ignore (Gen.generate ~dir:full_dir ~seed ~shards small_ratings);
          (* shard 2 regenerated alone, nothing before it *)
          ignore
            (Gen.generate_shard ~dir:solo_dir ~seed ~shards ~shard:2
               small_ratings);
          Alcotest.(check string)
            "shard 2 bitwise-identical whether or not shards 0..1 were \
             generated"
            (read_file (Shard.shard_path ~dir:full_dir 2))
            (read_file (Shard.shard_path ~dir:solo_dir 2))))

let test_gen_deterministic () =
  with_dir "a" (fun a ->
      with_dir "b" (fun b ->
          ignore (Gen.generate ~dir:a ~seed:5 ~shards:3 small_ratings);
          ignore (Gen.generate ~dir:b ~seed:5 ~shards:3 small_ratings);
          List.iter2
            (fun pa pb ->
              Alcotest.(check string)
                (Filename.basename pa ^ " reproducible") (read_file pa)
                (read_file pb))
            (Shard.list_shards a) (Shard.list_shards b);
          (* a different seed must actually change the stream *)
          with_dir "c" (fun c ->
              ignore (Gen.generate ~dir:c ~seed:6 ~shards:3 small_ratings);
              Alcotest.(check bool) "seed changes the records" false
                (read_file (Shard.shard_path ~dir:a 0)
                = read_file (Shard.shard_path ~dir:c 0)))))

let test_gen_counts () =
  with_dir "counts" (fun dir ->
      let headers = Gen.generate ~dir ~seed:3 ~shards:4 small_ratings in
      let total =
        List.fold_left (fun acc h -> acc + h.Shard.h_count) 0 headers
      in
      Alcotest.(check int) "shards partition the record range" 600 total;
      let hs = Shard.dataset_headers dir in
      Alcotest.(check int) "dataset_headers sees every shard" 4
        (List.length hs))

(* ------------------------------------------------------------------ *)
(* Loaders: shards stream into lib/data structures                     *)
(* ------------------------------------------------------------------ *)

let test_loader_ratings () =
  with_dir "load-r" (fun dir ->
      ignore (Gen.generate ~dir ~seed:11 ~shards:3 small_ratings);
      let d = Loader.ratings dir in
      Alcotest.(check int) "num_users" 50 d.Orion_data.Ratings.num_users;
      Alcotest.(check int) "num_items" 30 d.Orion_data.Ratings.num_items;
      Alcotest.(check bool) "ratings materialized (dups collapse)" true
        (d.Orion_data.Ratings.num_ratings > 0
        && d.Orion_data.Ratings.num_ratings <= 600);
      Dist_array.iter
        (fun key v ->
          Alcotest.(check bool) "key in bounds" true
            (key.(0) >= 0 && key.(0) < 50 && key.(1) >= 0 && key.(1) < 30);
          Alcotest.(check bool) "value finite" true (Float.is_finite v))
        d.Orion_data.Ratings.ratings)

let test_loader_features_corpus () =
  with_dir "load-f" (fun dir ->
      let spec =
        Gen.Features
          {
            num_samples = 40;
            num_features = 25;
            nnz_per_sample = 5;
            skew = 1.0;
            noise = 0.1;
          }
      in
      ignore (Gen.generate ~dir ~seed:2 ~shards:2 spec);
      let d = Loader.features dir in
      Alcotest.(check int) "num_samples" 40
        d.Orion_data.Sparse_features.num_samples;
      Alcotest.(check int) "num_features" 25
        d.Orion_data.Sparse_features.num_features);
  with_dir "load-c" (fun dir ->
      let spec =
        Gen.Corpus
          {
            num_docs = 20;
            vocab_size = 40;
            avg_doc_len = 12;
            num_topics = 3;
            skew = 1.0;
          }
      in
      ignore (Gen.generate ~dir ~seed:2 ~shards:2 spec);
      let d = Loader.corpus dir in
      Alcotest.(check int) "num_docs" 20 d.Orion_data.Corpus.num_docs;
      Alcotest.(check int) "vocab_size" 40 d.Orion_data.Corpus.vocab_size;
      Alcotest.(check bool) "tokens streamed" true
        (d.Orion_data.Corpus.num_tokens > 0))

let find_app name =
  match Orion.App.find name with
  | Some a -> a
  | None -> Alcotest.failf "app %s missing from registry" name

(* an app built from a sharded dataset (ORION_DATA_RATINGS) trains *)
let test_store_backed_app () =
  with_dir "backed" (fun dir ->
      ignore (Gen.generate ~dir ~seed:17 ~shards:2 small_ratings);
      Unix.putenv Orion_apps.Registry.ratings_dir_env dir;
      Fun.protect
        ~finally:(fun () ->
          Unix.putenv Orion_apps.Registry.ratings_dir_env "")
        (fun () ->
          let app = find_app "mf" in
          let inst =
            app.Orion.App.app_make ~num_machines:2 ~workers_per_machine:2 ()
          in
          let r =
            Orion.Engine.run inst.Orion.App.inst_session inst ~mode:`Sim
              ~passes:1 ()
          in
          Alcotest.(check bool) "entries came from the shards" true
            (r.Orion.Engine.ep_entries > 0);
          let loss =
            match app.Orion.App.app_loss with
            | Some f -> f inst
            | None -> Alcotest.fail "mf has a loss"
          in
          Alcotest.(check bool) "loss finite on shard-backed data" true
            (Float.is_finite loss)))

(* ------------------------------------------------------------------ *)
(* Checkpoints                                                         *)
(* ------------------------------------------------------------------ *)

let bits = Int64.bits_of_float

let test_checkpoint_roundtrip () =
  with_dir "ck" (fun dir ->
      let dense = Dist_array.fill_dense ~name:"d" ~dims:[| 4; 3 |] 0.0 in
      Dist_array.set dense [| 1; 2 |] 0.1;
      Dist_array.set dense [| 3; 0 |] (-7.25);
      let sparse =
        Dist_array.create_sparse ~name:"s" ~dims:[| 100 |] ~default:0.0
      in
      Dist_array.set sparse [| 42 |] 1e-9;
      let arrays = [ ("d", dense); ("s", sparse) ] in
      let s =
        Checkpoint.snapshot ~app:"mf" ~scale:2.0 ~pass:3 ~total_passes:5
          ~rng:123456789L arrays
      in
      let path = Checkpoint.save ~dir s in
      (* a second, older checkpoint must not win [latest] *)
      ignore
        (Checkpoint.save ~dir
           (Checkpoint.snapshot ~app:"mf" ~scale:2.0 ~pass:1 ~total_passes:5
              ~rng:1L arrays));
      (match Checkpoint.latest dir with
      | Some (p, got) ->
          Alcotest.(check string) "latest is the highest pass" path p;
          Alcotest.(check int) "pass" 3 got.Checkpoint.ck_pass;
          Alcotest.(check int) "total passes" 5 got.Checkpoint.ck_total_passes;
          Alcotest.(check string) "app" "mf" got.Checkpoint.ck_app;
          Alcotest.(check int64) "rng" 123456789L got.Checkpoint.ck_rng;
          let d2 = Dist_array.fill_dense ~name:"d" ~dims:[| 4; 3 |] 0.0 in
          let s2 =
            Dist_array.create_sparse ~name:"s" ~dims:[| 100 |] ~default:0.0
          in
          Checkpoint.restore got [ ("d", d2); ("s", s2) ];
          Alcotest.(check int64) "dense bits" (bits 0.1)
            (bits (Dist_array.get d2 [| 1; 2 |]));
          Alcotest.(check int64) "dense bits 2" (bits (-7.25))
            (bits (Dist_array.get d2 [| 3; 0 |]));
          Alcotest.(check int64) "sparse bits" (bits 1e-9)
            (bits (Dist_array.get s2 [| 42 |]))
      | None -> Alcotest.fail "no checkpoint found");
      (* corruption: a flipped payload byte must fail the CRC *)
      let image = read_file path in
      let flipped = Bytes.of_string image in
      let mid = String.length image / 2 in
      Bytes.set flipped mid
        (Char.chr (Char.code (Bytes.get flipped mid) lxor 0x40));
      let bad = Filename.concat dir "bad.orck" in
      write_file bad (Bytes.to_string flipped);
      match Checkpoint.load bad with
      | _ -> Alcotest.fail "corrupt checkpoint was accepted"
      | exception Checkpoint.Corrupt _ -> ())

(* ------------------------------------------------------------------ *)
(* Resume equivalence: a run checkpointed at pass k and resumed from   *)
(* the checkpoint reaches the same final state as the uninterrupted    *)
(* run — bitwise for unbuffered apps, within tolerance for buffered    *)
(* FP accumulation whose merge association differs across the cut      *)
(* ------------------------------------------------------------------ *)

let check_outputs ~what ~tolerance a b =
  List.iter2
    (fun (name_a, arr_a) (_, arr_b) ->
      let d = Verify.diff_arrays name_a arr_a arr_b in
      Alcotest.(check bool)
        (Printf.sprintf "%s: %s equal (max abs %.3e, max rel %.3e)" what
           name_a d.Verify.d_max_abs d.Verify.d_max_rel)
        true
        (Verify.diff_ok ~tolerance d))
    a b

let rng_state inst =
  Orion.Interp.Rng.state inst.Orion.App.inst_env.Orion.Interp.rng

let resume_matches name ~mode ~tolerance () =
  let app = find_app name in
  let passes = 4 and cut = 2 in
  let make () =
    app.Orion.App.app_make ~num_machines:2 ~workers_per_machine:2 ()
  in
  (* truth: uninterrupted *)
  let truth = make () in
  ignore
    (Orion.Engine.run truth.Orion.App.inst_session truth ~mode ~passes ());
  with_dir ("resume-" ^ name) (fun dir ->
      (* interrupted: checkpoint every pass, stop after [cut] *)
      let inst1 = make () in
      let sink ~pass_done arrays =
        ignore
          (Checkpoint.save ~dir
             (Checkpoint.snapshot ~app:name ~scale:1.0 ~pass:pass_done
                ~total_passes:passes ~rng:(rng_state inst1) arrays))
      in
      ignore
        (Orion.Engine.run inst1.Orion.App.inst_session inst1 ~mode
           ~passes:cut ~checkpoint:(1, sink) ());
      (* resume: fresh instance, newest checkpoint, remaining passes *)
      match Checkpoint.latest dir with
      | None -> Alcotest.fail "no checkpoint written"
      | Some (_, s) ->
          Alcotest.(check int) "checkpointed at the cut" cut
            s.Checkpoint.ck_pass;
          let inst2 = make () in
          Checkpoint.restore s inst2.Orion.App.inst_arrays;
          Orion.Interp.Rng.set_state
            inst2.Orion.App.inst_env.Orion.Interp.rng s.Checkpoint.ck_rng;
          ignore
            (Orion.Engine.run inst2.Orion.App.inst_session inst2 ~mode
               ~passes:(passes - s.Checkpoint.ck_pass) ());
          check_outputs
            ~what:
              (Printf.sprintf "%s %s resumed-vs-uninterrupted" name
                 (Orion.Engine.mode_to_string mode))
            ~tolerance truth.Orion.App.inst_outputs
            inst2.Orion.App.inst_outputs)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "store"
    [
      ( "shard",
        [
          qc qcheck_shard_roundtrip;
          tc "header fields round-trip" `Quick test_shard_header;
          tc "corruption is rejected with a position" `Quick
            test_shard_corruption;
          tc "writer publishes atomically" `Quick test_writer_is_atomic;
        ] );
      ( "gen",
        [
          tc "shard k independent of shards 0..k-1" `Quick
            test_gen_shard_independent;
          tc "generation is deterministic per seed" `Quick
            test_gen_deterministic;
          tc "shards partition the record range" `Quick test_gen_counts;
        ] );
      ( "loader",
        [
          tc "ratings stream back from shards" `Quick test_loader_ratings;
          tc "features and corpus stream back" `Quick
            test_loader_features_corpus;
          tc "mf trains on a shard-backed dataset" `Quick
            test_store_backed_app;
        ] );
      ( "checkpoint",
        [ tc "save/load/restore round-trip" `Quick test_checkpoint_roundtrip ]
      );
      ( "resume",
        [
          tc "mf sim" `Quick (resume_matches "mf" ~mode:`Sim ~tolerance:None);
          tc "lda sim" `Quick
            (resume_matches "lda" ~mode:`Sim ~tolerance:None);
          tc "gbt sim" `Quick
            (resume_matches "gbt" ~mode:`Sim ~tolerance:None);
          tc "slr sim" `Quick
            (resume_matches "slr" ~mode:`Sim ~tolerance:(Some 1e-9));
          tc "mf parallel" `Slow
            (resume_matches "mf" ~mode:(`Parallel 2) ~tolerance:None);
          tc "slr parallel" `Slow
            (resume_matches "slr" ~mode:(`Parallel 2) ~tolerance:(Some 1e-9));
        ] );
    ]
