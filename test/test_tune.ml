(* Tests for lib/tune: the measured cost table, the weighted
   re-balance (valid cover + strict improvement on forced skew), the
   race-checker gate on candidate schedules, and the end-to-end
   adaptive runs (parallel and distributed) with replay equality. *)

module Partitioner = Orion.Partitioner
module Telemetry = Orion.Telemetry
module Schedule = Orion.Schedule
module Race = Orion_verify.Race

let tc = Alcotest.test_case

(* the adaptive tests run the domain pool in-process, after which
   Unix.fork is off the table — exec the worker binary (a declared
   test dep) for the distributed cases instead *)
let () =
  let worker =
    Filename.concat
      (Filename.dirname Sys.executable_name)
      "../bin/orion_worker.exe"
  in
  Unix.putenv Orion_net.Dist_master.spawn_env ("exec:" ^ worker)

(* ------------------------------------------------------------------ *)
(* Weighted re-balance: valid cover for arbitrary cost tables          *)
(* ------------------------------------------------------------------ *)

(* valid cover under the partitioner's documented clamping: never more
   partitions than indices, at least one even for an empty dimension *)
let check_cover ~n ~parts (b : Partitioner.boundaries) =
  let parts = max 1 (min parts n) in
  Array.length b = parts + 1
  && b.(0) = 0
  && b.(parts) = n
  && Array.for_all (fun ok -> ok)
       (Array.init parts (fun p -> b.(p) <= b.(p + 1)))

let qcheck_weighted_cover =
  QCheck.Test.make ~count:500
    ~name:"weighted_ranges is a valid cover for random cost tables"
    QCheck.(
      pair (int_range 1 8)
        (list_of_size (Gen.int_range 1 64) (float_range 0.0 100.0)))
    (fun (parts, ws) ->
      let weights = Array.of_list ws in
      let n = Array.length weights in
      let b = Partitioner.weighted_ranges ~weights ~parts in
      check_cover ~n ~parts b)

let qcheck_weighted_cover_degenerate =
  QCheck.Test.make ~count:200
    ~name:"weighted_ranges covers even all-zero / tiny tables"
    QCheck.(pair (int_range 1 6) (int_range 1 40))
    (fun (parts, n) ->
      let b =
        Partitioner.weighted_ranges ~weights:(Array.make n 0.0) ~parts
      in
      check_cover ~n ~parts b)

(* ------------------------------------------------------------------ *)
(* Forced skew: the weighted split strictly reduces max-partition cost *)
(* ------------------------------------------------------------------ *)

let max_part_weight (weights : float array) (b : Partitioner.boundaries) =
  let parts = Array.length b - 1 in
  let m = ref 0.0 in
  for p = 0 to parts - 1 do
    let acc = ref 0.0 in
    for i = b.(p) to b.(p + 1) - 1 do
      acc := !acc +. weights.(i)
    done;
    m := Float.max !m !acc
  done;
  !m

let test_weighted_beats_equal_on_skew () =
  (* front-loaded work, the shape generate_skewed produces: a
     count-balanced (= equal) split puts nearly all of it in part 0 *)
  let n = 512 in
  let weights =
    Array.init n (fun i -> 20.0 /. (1.0 +. (19.0 *. float_of_int i /. 512.0)))
  in
  List.iter
    (fun parts ->
      let equal = Partitioner.equal_ranges ~dim_size:n ~parts in
      let weighted = Partitioner.weighted_ranges ~weights ~parts in
      let before = max_part_weight weights equal
      and after = max_part_weight weights weighted in
      Alcotest.(check bool)
        (Printf.sprintf "parts=%d: weighted max %.1f < equal max %.1f" parts
           after before)
        true (after < before))
    [ 2; 4; 8 ]

(* ------------------------------------------------------------------ *)
(* Cost table aggregation                                              *)
(* ------------------------------------------------------------------ *)

let bc ~pass ~space ~time ~seconds ~entries =
  {
    Telemetry.bc_pass = pass;
    bc_space = space;
    bc_time = time;
    bc_seconds = seconds;
    bc_entries = entries;
  }

let test_cost_table_aggregates () =
  let costs =
    [
      bc ~pass:1 ~space:0 ~time:0 ~seconds:0.3 ~entries:30;
      bc ~pass:1 ~space:0 ~time:1 ~seconds:0.3 ~entries:30;
      bc ~pass:1 ~space:1 ~time:0 ~seconds:0.2 ~entries:40;
      (* a different pass must be ignored *)
      bc ~pass:0 ~space:1 ~time:0 ~seconds:9.9 ~entries:999;
    ]
  in
  match Orion_tune.Cost_table.of_costs ~sp:2 ~pass:1 costs with
  | None -> Alcotest.fail "expected a cost table"
  | Some t ->
      let open Orion_tune.Cost_table in
      Alcotest.(check int) "pass" 1 t.ct_pass;
      Alcotest.(check (float 1e-9)) "part0 seconds" 0.6 t.ct_parts.(0).pc_seconds;
      Alcotest.(check int) "part0 entries" 60 t.ct_parts.(0).pc_entries;
      Alcotest.(check (float 1e-9)) "total" 0.8 t.ct_total_seconds;
      Alcotest.(check (float 1e-9)) "max" 0.6 t.ct_max_seconds;
      Alcotest.(check (float 1e-9)) "straggler" 1.5 t.ct_straggler;
      Alcotest.(check (float 1e-9)) "rate part0" (0.6 /. 60.0)
        (rate_at t ~boundaries:[| 0; 60; 100 |] 10);
      Alcotest.(check (float 1e-9)) "rate part1" (0.2 /. 40.0)
        (rate_at t ~boundaries:[| 0; 60; 100 |] 99)

let test_cost_table_empty () =
  match Orion_tune.Cost_table.of_costs ~sp:2 ~pass:3 [] with
  | None -> ()
  | Some _ -> Alcotest.fail "no measurements must give no table"

(* ------------------------------------------------------------------ *)
(* Race-checker gate: random weighted cuts of a real app's schedule    *)
(* ------------------------------------------------------------------ *)

let find_app name =
  Orion_apps.Registry.ensure ();
  match Orion.App.find name with
  | Some a -> a
  | None -> Alcotest.fail (name ^ " app missing from registry")

(* One serial observation (edges are keyed by iteration keys, so they
   are valid for every candidate cut of the same data), then many
   random weight tables -> weighted cut -> rebuilt schedule -> race
   check.  This is exactly the gate Replanner.make runs per candidate. *)
let test_random_rebalance_race_clean () =
  let app = find_app "slrskew" in
  let inst = app.Orion.App.app_make ~num_machines:2 ~workers_per_machine:1 () in
  let plan = Orion.analyze_loop inst.Orion.App.inst_session inst.inst_loop in
  let compiled =
    Orion.compile inst.inst_session ~plan ~iter:inst.inst_iter ()
  in
  let sched0 = compiled.Orion.schedule in
  let sp = sched0.Schedule.space_parts
  and tp = sched0.Schedule.time_parts in
  let fresh = app.Orion.App.app_make ~num_machines:2 ~workers_per_machine:1 () in
  let log = Orion_verify.Verify.observe fresh in
  let edges =
    Orion_verify.Depobserve.edges ~ordered:plan.Orion.Plan.ordered
      ~skip_arrays:fresh.Orion.App.inst_buffered log
  in
  let n = inst.inst_iter.Orion_dsm.Dist_array.dims.(0) in
  let rng = Random.State.make [| 42 |] in
  for _trial = 1 to 10 do
    let weights =
      Array.init n (fun _ -> 0.01 +. Random.State.float rng 10.0)
    in
    let nb = Partitioner.weighted_ranges ~weights ~parts:sp in
    Alcotest.(check bool) "cover" true (check_cover ~n ~parts:sp nb);
    let sched =
      Schedule.partition_1d_with ~shuffle_seed:17 inst.inst_iter ~space_dim:0
        ~space_boundaries:nb
    in
    let model =
      Race.model_of_plan plan ~pipeline_depth:compiled.Orion.pipeline_depth
        ~sp ~tp
    in
    let race = Race.build model ~workers:sp sched in
    let violations = Race.check race ~ordered:plan.Orion.Plan.ordered edges in
    Alcotest.(check int) "race-checker clean" 0 (List.length violations)
  done

(* ------------------------------------------------------------------ *)
(* End-to-end adaptive runs                                            *)
(* ------------------------------------------------------------------ *)

let test_adaptive_parallel () =
  let app = find_app "slrskew" in
  let r =
    Orion_tune.Tune_bench.run_app ~app ~mode:(`Parallel 2) ~passes:3
      ~scale:2.0 ~num_machines:2 ~workers_per_machine:1 ()
  in
  (* the re-planner runs at pass boundaries: passes - 1 of them *)
  Alcotest.(check int) "every decision logged" 2
    (List.length r.Orion_tune.Tune_bench.tb_decisions);
  Alcotest.(check int) "no adopted re-plan skipped validation" 0
    r.Orion_tune.Tune_bench.tb_adopted_unvalidated;
  Alcotest.(check bool) "replay of adopted sequence matches" true
    r.Orion_tune.Tune_bench.tb_replay_equal

let test_adaptive_distributed () =
  let app = find_app "slrskew" in
  let r =
    Orion_tune.Tune_bench.run_app ~app ~mode:(`Distributed (2, `Unix))
      ~passes:3 ~scale:2.0 ~num_machines:2 ~workers_per_machine:1 ()
  in
  Alcotest.(check int) "no adopted re-plan skipped validation" 0
    r.Orion_tune.Tune_bench.tb_adopted_unvalidated;
  Alcotest.(check bool) "replay of adopted sequence matches" true
    r.Orion_tune.Tune_bench.tb_replay_equal

(* A scripted re-plan forces a mid-run migration in the distributed
   backend (wire v5 Repartition), and the result must agree with an
   undisturbed static run: slrskew buffers its updates, so the final
   model is partition-independent up to float summation order. *)
let test_distributed_migration_preserves_result () =
  let app = find_app "slrskew" in
  let make () =
    app.Orion.App.app_make ~scale:2.0 ~num_machines:2 ~workers_per_machine:1 ()
  in
  let s_inst = make () in
  let _ =
    Orion.Engine.run s_inst.Orion.App.inst_session s_inst
      ~mode:(`Distributed { Orion.Engine.procs = 2; transport = `Unix })
      ~passes:3 ~scale:2.0 ()
  in
  let m_inst = make () in
  let n = m_inst.Orion.App.inst_iter.Orion_dsm.Dist_array.dims.(0) in
  let forced =
    {
      Orion.Engine.rp_space_boundaries = Some [| 0; n / 4; n |];
      rp_pipeline_depth = None;
      rp_strategy = None;
      rp_reason = "forced migration (test)";
    }
  in
  let replay = Orion_tune.Replanner.scripted [ (0, forced) ] in
  let _ =
    Orion.Engine.run m_inst.Orion.App.inst_session m_inst
      ~mode:(`Distributed { Orion.Engine.procs = 2; transport = `Unix })
      ~passes:3 ~scale:2.0 ~replanner:replay.Orion_tune.Replanner.fn ()
  in
  List.iter
    (fun (name, arr) ->
      match List.assoc_opt name m_inst.Orion.App.inst_outputs with
      | None -> Alcotest.fail ("missing output " ^ name)
      | Some other ->
          Alcotest.(check bool)
            (name ^ " unchanged by migration")
            true
            (Orion_verify.Verify.diff_ok
               ~tolerance:app.Orion.App.app_tolerance
               (Orion_verify.Verify.diff_arrays name arr other)))
    s_inst.Orion.App.inst_outputs

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "tune"
    [
      ( "rebalance",
        [
          qc qcheck_weighted_cover;
          qc qcheck_weighted_cover_degenerate;
          tc "forced skew strictly improves" `Quick
            test_weighted_beats_equal_on_skew;
        ] );
      ( "cost_table",
        [
          tc "aggregates one pass" `Quick test_cost_table_aggregates;
          tc "empty measurements" `Quick test_cost_table_empty;
        ] );
      ( "race_gate",
        [ tc "random rebalances race-clean" `Slow
            test_random_rebalance_race_clean ] );
      ( "adaptive",
        [
          tc "parallel slrskew" `Slow test_adaptive_parallel;
          tc "distributed slrskew" `Slow test_adaptive_distributed;
          tc "distributed forced migration" `Slow
            test_distributed_migration_preserves_result;
        ] );
    ]
