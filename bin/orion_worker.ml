(* The distributed worker executable: one process per space partition,
   spawned by the master behind [Orion.Engine.run ~mode:(`Distributed _)].
   It receives only its rank and the master's address; everything else
   (app, scale, schedule shape, expected fingerprint) arrives over the
   protocol, and the app instance is rebuilt from the registry. *)

let usage = "orion_worker --rank N --master ADDR"

let () =
  Orion_apps.Registry.ensure ();
  let rank = ref (-1) and master = ref "" in
  let rec parse = function
    | [] -> ()
    | "--rank" :: v :: rest ->
        (match int_of_string_opt v with
        | Some r -> rank := r
        | None ->
            prerr_endline ("orion_worker: bad rank: " ^ v);
            exit 2);
        parse rest
    | "--master" :: v :: rest ->
        master := v;
        parse rest
    | arg :: _ ->
        prerr_endline ("orion_worker: unknown argument: " ^ arg);
        prerr_endline usage;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !rank < 0 || !master = "" then begin
    prerr_endline usage;
    exit 2
  end;
  match
    Orion_net.Dist_worker.connect_and_serve
      ~materialize:Orion_apps.Registry.materialize ~rank:!rank
      ~master_addr:!master
  with
  | () -> exit 0
  | exception e ->
      Printf.eprintf "orion_worker (rank %d): %s\n%!" !rank
        (Printexc.to_string e);
      exit 2
