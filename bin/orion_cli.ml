(* The `orion` command-line tool.

   Subcommands:
     orion analyze FILE       statically analyze an OrionScript program
                              (prints the Fig. 6-style report per loop)
     orion explain FILE       full analysis provenance: per-pair dependence
                              derivation + strategy decision tree (or --app)
     orion run FILE           run a driver program on a simulated cluster
                              (--profile for a per-line hot-spot report)
     orion prefetch FILE      show the synthesized prefetch program for
                              the first parallel loop
     orion apps               list the built-in applications (Table 2)
     orion generate KIND OUT  write a synthetic dataset as a text file *)

open Cmdliner

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* DistArray declarations for scripts analyzed from the CLI: the JIT
   knows array sizes because arrays are materialized before the loop
   compiles; the CLI takes them as --array NAME:DIMS flags instead. *)
let parse_array_spec spec =
  match String.split_on_char ':' spec with
  | [ name; dims ] -> (
      ( name,
        String.split_on_char 'x' dims |> List.map int_of_string
        |> Array.of_list,
        false ))
  | [ name; dims; "buffered" ] ->
      ( name,
        String.split_on_char 'x' dims |> List.map int_of_string
        |> Array.of_list,
        true )
  | _ ->
      raise
        (Invalid_argument
           (spec ^ ": expected NAME:DIMSxDIMS or NAME:DIMS:buffered"))

let arrays_arg =
  let doc =
    "Declare a DistArray, e.g. --array ratings:480000x17000 or --array \
     w_buf:1000000:buffered.  Needed because the analyzer works on \
     materialized array shapes."
  in
  Arg.(value & opt_all string [] & info [ "array"; "a" ] ~docv:"SPEC" ~doc)

let machines_arg =
  Arg.(value & opt int 4 & info [ "machines"; "m" ] ~docv:"N" ~doc:"simulated machines")

let wpm_arg =
  Arg.(
    value & opt int 2
    & info [ "workers-per-machine"; "w" ] ~docv:"N" ~doc:"workers per machine")

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"OrionScript source file")

(* --log LEVEL mirrors the ORION_LOG environment variable (the flag
   wins when both are given). *)
let log_arg =
  let doc =
    "Enable the structured event log at $(docv) (debug | info | warn); \
     equivalent to setting ORION_LOG."
  in
  Arg.(value & opt (some string) None & info [ "log" ] ~docv:"LEVEL" ~doc)

let setup_log = function
  | None -> ()
  | Some s -> (
      match Orion.Log.level_of_string s with
      | Some l -> Orion.Log.set_level (Some l)
      | None -> Printf.eprintf "orion: unknown log level %S (ignored)\n" s)

let make_session arrays ~machines ~wpm =
  let session =
    Orion.create_session ~num_machines:machines ~workers_per_machine:wpm ()
  in
  List.iter
    (fun spec ->
      let name, dims, buffered = parse_array_spec spec in
      Orion.register_meta session ~name ~dims ~buffered
        ~count:(Array.fold_left ( * ) 1 dims)
        ())
    arrays;
  session

(* ------------------------------------------------------------------ *)

let analyze_cmd =
  let run arrays machines wpm log file =
    setup_log log;
    let session = make_session arrays ~machines ~wpm in
    let src = read_file file in
    let diags = Orion.check_script session src in
    List.iter
      (fun d -> prerr_endline (Orion.Check.diagnostic_to_string d))
      diags;
    if Orion.Check.errors diags <> [] then 1
    else
      match Orion.analyze_script session src with
    | [] ->
        print_endline "no @parallel_for loops found";
        0
    | plans ->
        List.iteri
          (fun i plan ->
            Printf.printf "--- parallel loop %d ---\n" (i + 1);
            print_string (Orion.Plan.explain_to_string plan))
          plans;
        0
  in
  let term =
    Term.(const run $ arrays_arg $ machines_arg $ wpm_arg $ log_arg $ file_arg)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Statically analyze an OrionScript program's parallel loops")
    term

(* Every subcommand resolves --app through the one registry in
   Orion.App (populated by Orion_apps.Registry); `--app list` prints
   it. *)
let () = Orion_apps.Registry.ensure ()

let print_registry () =
  List.iter
    (fun (a : Orion.App.t) ->
      Printf.printf "%-6s %s\n" a.Orion.App.app_name
        a.Orion.App.app_description)
    (Orion.App.all ())

let unknown_app_msg name =
  Printf.sprintf "unknown app %S (expected one of: %s, or `list`)" name
    (String.concat " " (Orion.App.names ()))

(* Registers the app's paper-scale (Table 2) array shapes with the
   session and returns its script, so the full analysis pipeline can be
   exercised without a dataset. *)
let builtin_app session name =
  match Orion.App.find name with
  | Some a ->
      a.Orion.App.app_register_meta session;
      Some a.Orion.App.app_script
  | None -> None

(* --scale falls back to ORION_BENCH_SCALE so scripted runs can grow
   every subcommand's dataset uniformly *)
let env_scale () =
  match Sys.getenv_opt "ORION_BENCH_SCALE" with
  | Some v -> ( try float_of_string v with Failure _ -> 1.0)
  | None -> 1.0

let resolve_scale = function Some s -> s | None -> env_scale ()

let explain_cmd =
  let run arrays machines wpm log app json measured domains passes file =
    setup_log log;
    if app = Some "list" then begin
      print_registry ();
      0
    end
    else if measured then begin
      (* --measured re-costs the decision tree from a real measured run,
         so it needs an app instance with data, not just array shapes *)
      match (app, file) with
      | None, _ | Some _, Some _ ->
          prerr_endline "orion explain: --measured needs --app NAME (no FILE)";
          1
      | Some name, None -> (
          match
            Orion_tune.Measured.run_app ~name ~domains ~passes
              ~scale:(env_scale ()) ~num_machines:machines
              ~workers_per_machine:wpm
          with
          | Error e ->
              Printf.eprintf "orion explain: %s\n" e;
              1
          | Ok report ->
              if json then
                print_endline
                  (Orion.Report.emit ~kind:"explain-measured"
                     (Orion_tune.Measured.report_json report))
              else
                print_string
                  (Orion_tune.Measured.report_to_string report);
              0)
    end
    else
    let session = make_session arrays ~machines ~wpm in
    (* [checked] is false for built-in app scripts: they are driver
       fragments with free variables (e.g. num_iterations) that a real
       driver would define, so the whole-program checker does not
       apply. *)
    let src =
      match (app, file) with
      | Some _, Some _ ->
          prerr_endline "orion explain: give either FILE or --app, not both";
          None
      | Some name, None -> (
          match builtin_app session name with
          | Some src -> Some (src, false)
          | None ->
              Printf.eprintf "orion explain: %s\n" (unknown_app_msg name);
              None)
      | None, Some path -> Some (read_file path, true)
      | None, None ->
          prerr_endline "orion explain: need an OrionScript FILE or --app NAME";
          None
    in
    match src with
    | None -> 1
    | Some (src, checked) -> (
        let diags = if checked then Orion.check_script session src else [] in
        List.iter
          (fun d -> prerr_endline (Orion.Check.diagnostic_to_string d))
          diags;
        if Orion.Check.errors diags <> [] then 1
        else
          match Orion.analyze_script session src with
          | [] ->
              print_endline "no @parallel_for loops found";
              0
          | plans ->
              List.iteri
                (fun i plan ->
                  if json then print_endline (Orion.Explain.to_json plan)
                  else begin
                    Printf.printf "=== parallel loop %d ===\n" (i + 1);
                    print_string (Orion.Explain.report_to_string plan)
                  end)
                plans;
              0)
  in
  let app_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "app" ] ~docv:"NAME"
          ~doc:"explain a built-in application instead of a file: mf | slr | \
                lda | gbt")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"emit one machine-readable JSON object per loop instead of text")
  in
  let measured_arg =
    Arg.(
      value & flag
      & info [ "measured" ]
          ~doc:
            "run --app briefly on the domain pool with telemetry and render \
             the strategy decision tree with measured, calibrated costs \
             side-by-side with the static model, flagging decisions that \
             flip")
  in
  let domains_arg =
    Arg.(
      value & opt int 2
      & info [ "domains" ] ~docv:"N"
          ~doc:"OCaml domains for the --measured calibration run")
  in
  let passes_arg =
    Arg.(
      value & opt int 2
      & info [ "passes" ] ~docv:"N"
          ~doc:"training passes for the --measured calibration run")
  in
  let file_pos =
    Arg.(
      value & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"OrionScript source file")
  in
  let term =
    Term.(
      const run $ arrays_arg $ machines_arg $ wpm_arg $ log_arg $ app_arg
      $ json_arg $ measured_arg $ domains_arg $ passes_arg $ file_pos)
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Show the full analysis provenance for each parallel loop: \
          per-reference-pair dependence derivation (Algorithm 2) and the \
          strategy decision tree (--measured re-costs it from a real run)")
    term

(* run a registered app's parallel loop through the unified engine:
   simulated, on the domain pool, or on real worker processes *)
let run_app name ~machines ~wpm ~domains ~procs ~tcp ~comms ~passes ~scale
    ~ckpt_dir ~ckpt_every ~resume =
  if name = "list" then begin
    print_registry ();
    0
  end
  else if resume && ckpt_dir = None then begin
    prerr_endline "orion run: --resume needs --checkpoint DIR";
    1
  end
  else
    match Orion.App.find name with
    | None ->
        Printf.eprintf "orion run: %s\n" (unknown_app_msg name);
        1
    | Some a -> (
        let scale = resolve_scale scale in
        let inst, mode =
          match procs with
          | Some procs ->
              (* distributed instances are shaped one worker process
                 per simulated machine *)
              ( a.Orion.App.app_make ~scale ~num_machines:procs
                  ~workers_per_machine:1 (),
                `Distributed
                  {
                    Orion.Engine.procs;
                    transport = (if tcp then `Tcp else `Unix);
                  } )
          | None ->
              ( a.Orion.App.app_make ~scale ~num_machines:machines
                  ~workers_per_machine:wpm (),
                if domains <= 1 then `Sim else `Parallel domains )
        in
        (* resume picks up from the newest checkpoint: restore the
           arrays and RNG into the freshly built instance, then run only
           the passes the interrupted run never finished *)
        let done_passes =
          match (resume, ckpt_dir) with
          | true, Some dir -> (
              match Orion_store.Checkpoint.latest dir with
              | None ->
                  Printf.printf "no checkpoint in %s; starting from pass 0\n"
                    dir;
                  0
              | Some (path, s) ->
                  if s.Orion_store.Checkpoint.ck_app <> name then begin
                    Printf.eprintf
                      "orion run: checkpoint %s is for app %s, not %s\n" path
                      s.Orion_store.Checkpoint.ck_app name;
                    exit 1
                  end;
                  Orion_store.Checkpoint.restore s inst.Orion.App.inst_arrays;
                  Orion.Interp.Rng.set_state
                    inst.Orion.App.inst_env.Orion.Interp.rng
                    s.Orion_store.Checkpoint.ck_rng;
                  Printf.printf "resumed %s from %s (pass %d/%d)\n" name path
                    s.Orion_store.Checkpoint.ck_pass
                    s.Orion_store.Checkpoint.ck_total_passes;
                  s.Orion_store.Checkpoint.ck_pass)
          | _ -> 0
        in
        let remaining = max 0 (passes - done_passes) in
        let checkpoint =
          match ckpt_dir with
          | None -> None
          | Some dir ->
              let sink ~pass_done arrays =
                let s =
                  Orion_store.Checkpoint.snapshot ~app:name ~scale
                    ~pass:(done_passes + pass_done) ~total_passes:passes
                    ~rng:
                      (Orion.Interp.Rng.state
                         inst.Orion.App.inst_env.Orion.Interp.rng)
                    arrays
                in
                let path = Orion_store.Checkpoint.save ~dir s in
                Printf.printf "checkpoint: %s\n%!" path
              in
              Some (ckpt_every, sink)
        in
        if remaining = 0 then begin
          Printf.printf "app %s: all %d pass(es) already checkpointed\n" name
            passes;
          0
        end
        else
        match
          Orion.Engine.run inst.Orion.App.inst_session inst ~mode
            ~passes:remaining ~scale ?comms ?checkpoint ()
        with
        | exception (Orion.Engine.Distributed_error _ as exn) ->
            Printf.eprintf "orion run: %s\n"
              (Orion.Engine.distributed_error_to_string exn);
            1
        | r ->
            Printf.printf
              "app %s: %d pass(es), strategy %s, model %s, %dx%d blocks\n"
              name passes r.Orion.Engine.ep_strategy r.Orion.Engine.ep_model
              r.Orion.Engine.ep_space_parts r.Orion.Engine.ep_time_parts;
            Printf.printf "mode %s: %d entries, %d steals, wall %.4f s\n"
              (Orion.Engine.mode_to_string r.Orion.Engine.ep_mode)
              r.Orion.Engine.ep_entries r.Orion.Engine.ep_steals
              r.Orion.Engine.ep_wall_seconds;
            if r.Orion.Engine.ep_bytes_shipped > 0.0 then begin
              let full = r.Orion.Engine.ep_bytes_full in
              let saved =
                if full > 0.0 then
                  100.0 *. (1.0 -. (r.Orion.Engine.ep_bytes_shipped /. full))
                else 0.0
              in
              Printf.printf
                "bytes shipped (--comms %s): %.0f  (full-policy %.0f, saved \
                 %.1f%%)\n"
                r.Orion.Engine.ep_comms r.Orion.Engine.ep_bytes_shipped full
                saved;
              List.iter
                (fun (arr, b) ->
                  let policy =
                    match
                      List.assoc_opt arr r.Orion.Engine.ep_policy_by_array
                    with
                    | Some p -> Printf.sprintf "  [%s]" p
                    | None -> ""
                  in
                  Printf.printf "  %-16s %.0f%s\n" arr b policy)
                r.Orion.Engine.ep_bytes_by_array
            end;
            if r.Orion.Engine.ep_sim_time > 0.0 then
              Printf.printf "simulated time: %.4f s\n"
                r.Orion.Engine.ep_sim_time;
            (match r.Orion.Engine.ep_telemetry with
            | None -> ()
            | Some sm ->
                let m = sm.Orion.Telemetry.sm_overall in
                Printf.printf
                  "telemetry: straggler %.2f, barrier wait %.1f%%, %d \
                   span(s), %d dropped\n"
                  m.Orion.Metrics.straggler_ratio
                  (100.0 *. m.Orion.Metrics.barrier_wait_fraction)
                  (Orion.Trace.length sm.Orion.Telemetry.sm_trace)
                  sm.Orion.Telemetry.sm_dropped);
            0)

let run_cmd =
  let run arrays machines wpm log seed profile app domains procs tcp comms
      passes scale ckpt_dir ckpt_every resume file =
    setup_log log;
    match (app, file) with
    | Some _, Some _ ->
        prerr_endline "orion run: give either FILE or --app, not both";
        1
    | Some name, None ->
        run_app name ~machines ~wpm ~domains ~procs ~tcp ~comms ~passes
          ~scale ~ckpt_dir ~ckpt_every ~resume
    | None, None ->
        prerr_endline "orion run: need an OrionScript FILE or --app NAME";
        1
    | None, Some file ->
        let session = make_session arrays ~machines ~wpm in
        (* arrays declared on the command line become real zero-filled
           DistArrays so the program can execute *)
        List.iter
          (fun spec ->
            let name, dims, buffered = parse_array_spec spec in
            let arr = Orion.Dist_array.fill_dense ~name ~dims 0.0 in
            Orion.register session ~buffered arr)
          arrays;
        let src = read_file file in
        let prof = if profile then Some (Orion.Profile.create ()) else None in
        let env, stats = Orion.run_script session ~seed ?profile:prof src in
        ignore env;
        Printf.printf "ran %d parallel-loop executions\n" (List.length stats);
        Printf.printf "simulated time: %.4f s\n"
          (Orion.Cluster.now session.Orion.cluster);
        Printf.printf "bytes communicated: %.0f\n"
          session.Orion.cluster.Orion.Cluster.bytes_sent;
        (match prof with
        | Some p ->
            print_newline ();
            print_string (Orion.Profile.report ~src p)
        | None -> ());
        0
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"RNG seed")
  in
  let profile =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "profile the interpreted driver: per-line hit counts and \
             inclusive wall time, plus per-DistArray element access counts")
  in
  let app_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "app" ] ~docv:"NAME"
          ~doc:
            "run a registered app's parallel loop instead of a file (`list` \
             prints the registry)")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains"; "parallel" ] ~docv:"N"
          ~doc:
            "execute --app on a real pool of $(docv) OCaml domains (1 = \
             simulated cluster)")
  in
  let procs =
    Arg.(
      value
      & opt (some int) None
      & info [ "procs" ] ~docv:"N"
          ~doc:
            "execute --app on $(docv) real worker processes over sockets \
             (lib/net); overrides --domains")
  in
  let tcp =
    Arg.(
      value & flag
      & info [ "tcp" ]
          ~doc:
            "use TCP loopback instead of Unix domain sockets for --procs")
  in
  let comms =
    Arg.(
      value
      & opt (some string) None
      & info [ "comms" ] ~docv:"POLICY"
          ~doc:
            "communication policy for --procs: auto | full | delta | topk:K \
             | budget:BYTES (default: ORION_COMMS, or auto)")
  in
  let passes =
    Arg.(
      value & opt int 1
      & info [ "passes" ] ~docv:"N" ~doc:"training passes for --app")
  in
  let scale =
    Arg.(
      value
      & opt (some float) None
      & info [ "scale" ] ~docv:"S"
          ~doc:
            "dataset scale factor for --app (default: ORION_BENCH_SCALE, or \
             1.0)")
  in
  let ckpt_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"DIR"
          ~doc:
            "checkpoint the model arrays, pass counter and RNG state into \
             $(docv) at pass boundaries (--app only)")
  in
  let ckpt_every =
    Arg.(
      value & opt int 1
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:"checkpoint every $(docv) passes")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "restore the newest checkpoint in --checkpoint DIR and run only \
             the remaining passes")
  in
  let file_pos =
    Arg.(
      value & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"OrionScript source file")
  in
  let term =
    Term.(
      const run $ arrays_arg $ machines_arg $ wpm_arg $ log_arg $ seed $ profile
      $ app_arg $ domains $ procs $ tcp $ comms $ passes $ scale $ ckpt_dir
      $ ckpt_every $ resume $ file_pos)
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run an OrionScript driver program on a simulated cluster, or a \
          registered app on a real domain pool (--app NAME --domains N) or \
          on real worker processes over sockets (--app NAME --procs N)")
    term

let prefetch_cmd =
  let run arrays machines wpm file =
    let session = make_session arrays ~machines ~wpm in
    let src = read_file file in
    let program = Orion.Parser.parse_program src in
    match Orion.Refs.find_parallel_loops program with
    | { Orion.Ast.sk = Orion.Ast.For { kind = Each_loop _; body; _ }; _ } :: _ ->
        let plan =
          match Orion.analyze_script session src with
          | p :: _ -> p
          | [] -> failwith "unreachable"
        in
        let dist_vars = List.map fst plan.Orion.Plan.placements in
        let targets =
          match plan.Orion.Plan.prefetch_arrays with
          | [] -> dist_vars
          | l -> l
        in
        let generated, stats =
          Orion.Prefetch.synthesize ~dist_vars ~targets body
        in
        Printf.printf
          "# synthesized prefetch program (%d recordable, %d skipped)\n"
          stats.Orion.Prefetch.recorded stats.Orion.Prefetch.skipped;
        print_string (Orion.Pretty.program_to_string generated);
        0
    | _ ->
        prerr_endline "no @parallel_for loop found";
        1
  in
  let term = Term.(const run $ arrays_arg $ machines_arg $ wpm_arg $ file_arg) in
  Cmd.v
    (Cmd.info "prefetch"
       ~doc:"Show the synthesized bulk-prefetch program for the first loop")
    term

let apps_cmd =
  let run () =
    print_registry ();
    print_newline ();
    print_endline "Scripts (as fed to the analyzer):";
    List.iter
      (fun (a : Orion.App.t) ->
        Printf.printf "\n### %s\n%s" a.Orion.App.app_name
          a.Orion.App.app_script)
      (Orion.App.all ());
    0
  in
  Cmd.v
    (Cmd.info "apps" ~doc:"List registered applications and their scripts")
    Term.(const run $ const ())

let bench_cmd =
  let run machines wpm log mode apps domains procs tcp comms passes scale out
      =
    setup_log log;
    let scale = resolve_scale scale in
    let apps = match apps with [] -> None | l -> Some l in
    let transport = if tcp then `Tcp else `Unix in
    match
      match mode with
      | `Tune ->
          let out =
            Option.value out ~default:Orion_tune.Tune_bench.default_out
          in
          Orion_tune.Tune_bench.run ?apps ~domains_list:domains
            ~procs_list:procs
            ~comms:(match comms with c :: _ -> c | [] -> "auto")
            ~passes ~transport ~scale ~out ~num_machines:machines
            ~workers_per_machine:wpm ()
      | #Orion_apps.Bench.mode as mode ->
          let out =
            Option.value out ~default:(Orion_apps.Bench.default_out mode)
          in
          Orion_apps.Bench.run ~mode ~scale ~out ?apps ~domains_list:domains
            ~procs_list:procs ~comms ~passes ~transport
            ~num_machines:machines ~workers_per_machine:wpm ()
    with
    | exception (Orion.Engine.Distributed_error _ as exn) ->
        Printf.eprintf "orion bench: %s\n"
          (Orion.Engine.distributed_error_to_string exn);
        1
    | exception Invalid_argument msg ->
        Printf.eprintf "orion bench: %s\n" msg;
        1
    | _rows -> 0
  in
  let mode =
    Arg.(
      value
      & opt
          (enum
             [
               ("speedup", `Speedup);
               ("speedup-distributed", `Speedup_distributed);
               ("convergence", `Convergence);
               ("tune", `Tune);
             ])
          `Speedup
      & info [ "mode" ] ~docv:"MODE"
          ~doc:
            "benchmark mode: speedup (domain-pool wall-clock scaling), \
             speedup-distributed (multi-process socket runtime scaling), \
             convergence (per-pass training loss versus monotonic wall \
             time), or tune (static vs adaptive re-planning on skewed \
             inputs, BENCH_tune.json)")
  in
  let apps =
    Arg.(
      value
      & opt (list string) []
      & info [ "apps" ] ~docv:"NAMES"
          ~doc:"comma-separated registered apps (default: all)")
  in
  let domains =
    Arg.(
      value
      & opt (list int) [ 1; 2; 4; 8 ]
      & info [ "domains" ] ~docv:"NS"
          ~doc:"comma-separated domain counts to measure")
  in
  let procs =
    Arg.(
      value
      & opt (list int) [ 1; 2; 4 ]
      & info [ "procs" ] ~docv:"NS"
          ~doc:
            "comma-separated worker-process counts to measure \
             (speedup-distributed)")
  in
  let tcp =
    Arg.(
      value & flag
      & info [ "tcp" ]
          ~doc:
            "use TCP loopback instead of Unix domain sockets \
             (speedup-distributed)")
  in
  let comms =
    Arg.(
      value
      & opt (list string) [ "auto" ]
      & info [ "comms" ] ~docv:"POLICIES"
          ~doc:
            "comma-separated communication policies to measure \
             (speedup-distributed): auto | full | delta | topk:K | \
             budget:BYTES — a full-policy baseline row always runs first \
             so bytes-saved and loss-drift columns have a reference")
  in
  let passes =
    Arg.(
      value & opt int 3
      & info [ "passes" ] ~docv:"N" ~doc:"training passes per measurement")
  in
  let scale =
    Arg.(
      value
      & opt (some float) None
      & info [ "scale" ] ~docv:"S"
          ~doc:
            "dataset scale factor — enlarge each app's synthetic input by \
             this factor so per-entry work dominates pool overhead (default: \
             ORION_BENCH_SCALE, or 1.0)")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:
            "JSON output path (default BENCH_parallel.json, or \
             BENCH_distributed.json for --mode speedup-distributed)")
  in
  let term =
    Term.(
      const run $ machines_arg $ wpm_arg $ log_arg $ mode $ apps $ domains
      $ procs $ tcp $ comms $ passes $ scale $ out)
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Benchmark the registered apps on the real multicore domain pool \
          (BENCH_parallel.json) or the multi-process socket runtime \
          (BENCH_distributed.json)")
    term

let generate_cmd =
  let run kind out scale =
    (match kind with
    | "ratings" ->
        let d = Orion_data.Ratings.netflix_like ~scale () in
        let oc = open_out out in
        Orion.Dist_array.iter
          (fun key v -> Printf.fprintf oc "%d %d %.3f\n" key.(0) key.(1) v)
          d.ratings;
        close_out oc;
        Printf.printf "wrote %d ratings (%dx%d) to %s\n" d.num_ratings
          d.num_users d.num_items out
    | "corpus" ->
        let c = Orion_data.Corpus.nytimes_like ~scale () in
        let oc = open_out out in
        Orion.Dist_array.iter
          (fun key v -> Printf.fprintf oc "%d %d %.0f\n" key.(0) key.(1) v)
          c.tokens;
        close_out oc;
        Printf.printf "wrote %d tokens (%d docs, vocab %d) to %s\n"
          c.num_tokens c.num_docs c.vocab_size out
    | other -> Printf.eprintf "unknown dataset kind %S (ratings|corpus)\n" other);
    0
  in
  let kind =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"KIND" ~doc:"ratings | corpus")
  in
  let out =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"OUT" ~doc:"output path")
  in
  let scale =
    Arg.(value & opt float 1.0 & info [ "scale" ] ~docv:"S" ~doc:"dataset scale factor")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Write a synthetic dataset to a text file")
    Term.(const run $ kind $ out $ scale)

(* orion data gen|info — the out-of-core path (lib/store): streaming
   binary shards instead of `generate`'s in-memory text dumps *)
let data_cmd =
  let handle_corrupt f =
    match f () with
    | n -> n
    | exception Orion_store.Shard.Corrupt { path; offset; reason } ->
        Printf.eprintf "orion data: %s: corrupt at byte %d: %s\n" path offset
          reason;
        1
  in
  let gen_cmd =
    let run kind out scale shards seed =
      let scale = resolve_scale scale in
      let spec =
        match kind with
        | `Ratings -> Orion_store.Gen.movielens_spec ~scale ()
        | `Features -> Orion_store.Gen.kdd_spec ~scale ()
        | `Corpus -> Orion_store.Gen.nytimes_spec ~scale ()
      in
      handle_corrupt (fun () ->
          let headers = Orion_store.Gen.generate ~dir:out ~seed ~shards spec in
          let total =
            List.fold_left
              (fun acc h -> acc + h.Orion_store.Shard.h_count)
              0 headers
          in
          Printf.printf "wrote %d %s records (%s) in %d shard(s) to %s\n"
            total
            (Orion_store.Gen.spec_kind spec)
            (Orion_store.Gen.schema_of_spec spec)
            shards out;
          0)
    in
    let kind =
      Arg.(
        required
        & pos 0
            (some
               (enum
                  [
                    ("ratings", `Ratings);
                    ("features", `Features);
                    ("corpus", `Corpus);
                  ]))
            None
        & info [] ~docv:"KIND"
            ~doc:
              "ratings (MovieLens-shaped Zipf matrix), features (KDD-shaped \
               sparse samples), or corpus (NYTimes-shaped bags of words)")
    in
    let out =
      Arg.(
        required
        & opt (some string) None
        & info [ "out"; "o" ] ~docv:"DIR" ~doc:"dataset directory to write")
    in
    let scale =
      Arg.(
        value
        & opt (some float) None
        & info [ "scale" ] ~docv:"S"
            ~doc:
              "dataset scale factor (1.0 is full paper scale, e.g. ~10M \
               ratings; default: ORION_BENCH_SCALE, or 1.0)")
    in
    let shards =
      Arg.(
        value & opt int 8
        & info [ "shards" ] ~docv:"N" ~doc:"number of shard files")
    in
    let seed =
      Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"dataset seed")
    in
    Cmd.v
      (Cmd.info "gen"
         ~doc:
           "Stream a synthetic Zipf-skewed dataset into binary shards \
            (bounded memory: records never materialize in the heap)")
      Term.(const run $ kind $ out $ scale $ shards $ seed)
  in
  let info_cmd =
    let run dir verify =
      handle_corrupt (fun () ->
          let headers = Orion_store.Shard.dataset_headers dir in
          let h0 = List.hd headers in
          Printf.printf "dataset %s\n" dir;
          Printf.printf "  schema      %s (container v%d)\n"
            h0.Orion_store.Shard.h_schema Orion_store.Shard.version;
          Printf.printf "  seed        %d\n" h0.Orion_store.Shard.h_seed;
          Printf.printf "  shards      %d\n" h0.Orion_store.Shard.h_num_shards;
          List.iter
            (fun (k, v) -> Printf.printf "  %-11s %s\n" k v)
            h0.Orion_store.Shard.h_meta;
          let total = ref 0 in
          List.iter
            (fun h ->
              let path =
                Orion_store.Shard.shard_path ~dir h.Orion_store.Shard.h_shard
              in
              let size =
                let ic = open_in_bin path in
                Fun.protect
                  ~finally:(fun () -> close_in ic)
                  (fun () -> in_channel_length ic)
              in
              total := !total + h.Orion_store.Shard.h_count;
              (* --verify streams every record back through the CRC *)
              if verify then
                Orion_store.Shard.iter path ~f:(fun _ -> ());
              Printf.printf "  shard %04d  %8d records  %10d bytes%s\n"
                h.Orion_store.Shard.h_shard h.Orion_store.Shard.h_count size
                (if verify then "  crc ok" else ""))
            headers;
          Printf.printf "  total       %d records\n" !total;
          0)
    in
    let dir =
      Arg.(
        required
        & pos 0 (some dir) None
        & info [] ~docv:"DIR" ~doc:"dataset directory")
    in
    let verify =
      Arg.(
        value & flag
        & info [ "verify" ]
            ~doc:"stream every record back and verify counts and CRCs")
    in
    Cmd.v
      (Cmd.info "info"
         ~doc:"Describe a sharded dataset: schema, seed, shards, metadata")
      Term.(const run $ dir $ verify)
  in
  Cmd.group
    (Cmd.info "data"
       ~doc:
         "Out-of-core datasets: generate and inspect versioned binary \
          shards (CRC-checked, streaming)")
    [ gen_cmd; info_cmd ]

let trace_cmd =
  (* --mode parallel | distributed: run a registered app on a real
     runtime with telemetry forced on and export the merged wall-clock
     timeline (Chrome trace-event JSON with metrics and per-block
     costs as metadata) plus optional per-pass metrics CSV. *)
  let run_real ~kind ~app ~machines ~wpm ~domains ~procs ~tcp ~passes ~scale
      ~out ~csv =
    match Orion.App.find app with
    | None ->
        Printf.eprintf "orion trace: %s\n" (unknown_app_msg app);
        1
    | Some a -> (
        let inst, mode, label =
          match kind with
          | `Parallel ->
              ( a.Orion.App.app_make ~scale ~num_machines:machines
                  ~workers_per_machine:wpm (),
                `Parallel domains,
                Printf.sprintf "parallel (%d domains)" domains )
          | `Distributed ->
              ( a.Orion.App.app_make ~scale ~num_machines:procs
                  ~workers_per_machine:1 (),
                `Distributed
                  {
                    Orion.Engine.procs;
                    transport = (if tcp then `Tcp else `Unix);
                  },
                Printf.sprintf "distributed (%d procs)" procs )
        in
        match
          Orion.Engine.run inst.Orion.App.inst_session inst ~mode ~passes
            ~telemetry:true ()
        with
        | exception (Orion.Engine.Distributed_error _ as exn) ->
            Printf.eprintf "orion trace: %s\n"
              (Orion.Engine.distributed_error_to_string exn);
            1
        | r -> (
            match r.Orion.Engine.ep_telemetry with
            | None ->
                prerr_endline "orion trace: run produced no telemetry";
                1
            | Some sm ->
                let oc = open_out out in
                output_string oc (Orion.Telemetry.to_chrome_json sm);
                close_out oc;
                Printf.printf "app %s, %s: %d pass(es), wall %.4f s\n" app
                  label passes r.Orion.Engine.ep_wall_seconds;
                Printf.printf
                  "%d spans (%d dropped), open in chrome://tracing\n"
                  (Orion.Trace.length sm.Orion.Telemetry.sm_trace)
                  sm.Orion.Telemetry.sm_dropped;
                (* same "wrote PATH" line every bench mode prints *)
                Printf.printf "wrote %s\n" out;
                if sm.Orion.Telemetry.sm_dropped > 0 then
                  Printf.eprintf
                    "orion trace: warning: trace buffer overflow — %d \
                     span(s) dropped\n"
                    sm.Orion.Telemetry.sm_dropped;
                (match csv with
                | None -> ()
                | Some path ->
                    let oc = open_out path in
                    Printf.fprintf oc "# schema_version %d\n"
                      Orion.Report.schema_version;
                    Printf.fprintf oc "# dropped %d\n"
                      sm.Orion.Telemetry.sm_dropped;
                    output_string oc
                      ("pass," ^ Orion.Metrics.csv_header ^ "\n");
                    List.iter
                      (fun (pass, m) ->
                        Printf.fprintf oc "%d,%s\n" pass
                          (Orion.Metrics.csv_row m))
                      sm.Orion.Telemetry.sm_pass_metrics;
                    close_out oc;
                    Printf.printf "wrote per-pass metrics to %s\n" path);
                0))
  in
  let run_sim ~machines ~wpm ~strategy ~passes ~scale ~cost_per_entry ~out
      ~csv =
    let d = Orion_data.Ratings.netflix_like ~scale () in
    let cluster =
      Orion.Cluster.create ~num_machines:machines ~workers_per_machine:wpm
        ~cost:Orion.Cost_model.default ()
    in
    let workers = Orion.Cluster.num_workers cluster in
    let rank = 16 in
    let model =
      Orion_apps.Sgd_mf.init_model ~rank
        ~num_users:d.Orion_data.Ratings.num_users
        ~num_items:d.Orion_data.Ratings.num_items ()
    in
    let body ~worker ~key ~value =
      Orion_apps.Sgd_mf.body model ~step_size:0.005 ~worker ~key ~value
    in
    let ratings = d.Orion_data.Ratings.ratings in
    let compute = Orion.Executor.Per_entry cost_per_entry in
    (* H is the rotated DistArray for 2D MF schedules: rank x items
       floats, split across space partitions *)
    let h_bytes_per_partition =
      float_of_int (rank * d.Orion_data.Ratings.num_items)
      *. 8.0 /. float_of_int workers
    in
    let depth = 2 in
    let run_pass =
      match strategy with
      | `Serial -> fun () -> Orion.Executor.run_serial cluster ~compute ratings body
      | `One_d ->
          let sched =
            Orion.Schedule.partition_1d ratings ~space_dim:0
              ~space_parts:workers
          in
          fun () -> Orion.Executor.run_1d cluster ~compute sched body
      | `Ordered_2d ->
          let sched =
            Orion.Schedule.partition_2d ratings ~space_dim:0 ~time_dim:1
              ~space_parts:workers ~time_parts:workers
          in
          fun () ->
            Orion.Executor.run_2d_ordered cluster ~compute ~rotated_label:"H"
              ~rotated_bytes_per_partition:h_bytes_per_partition sched body
      | `Unordered_2d ->
          let sched =
            Orion.Schedule.partition_2d ratings ~space_dim:0 ~time_dim:1
              ~space_parts:workers ~time_parts:(workers * depth)
          in
          fun () ->
            Orion.Executor.run_2d_unordered cluster ~compute
              ~pipeline_depth:depth ~rotated_label:"H"
              ~rotated_bytes_per_partition:
                (h_bytes_per_partition /. float_of_int depth)
              sched body
    in
    Printf.printf
      "SGD MF (%d ratings, %dx%d, rank %d) on %d machines x %d workers\n"
      d.Orion_data.Ratings.num_ratings d.Orion_data.Ratings.num_users
      d.Orion_data.Ratings.num_items rank machines wpm;
    let metrics_rows = ref [] in
    for pass = 1 to passes do
      let since = Orion.Cluster.now cluster in
      ignore (run_pass ());
      let m = Orion.Cluster.metrics ~since cluster in
      metrics_rows := m :: !metrics_rows;
      Printf.printf "pass %2d | loss %12.2f | %s\n" pass
        (Orion_apps.Sgd_mf.loss model ratings)
        (Orion.Metrics.summary m)
    done;
    let trace = cluster.Orion.Cluster.trace in
    let oc = open_out out in
    output_string oc
      (Orion.Trace.to_chrome_json
         ~pid_of_worker:(Orion.Cluster.machine_of cluster)
         trace);
    close_out oc;
    Printf.printf "%d spans (%d dropped), open in chrome://tracing\n"
      (Orion.Trace.length trace)
      (Orion.Trace.dropped trace);
    (* same "wrote PATH" line every bench mode prints *)
    Printf.printf "wrote %s\n" out;
    if Orion.Trace.dropped trace > 0 then
      Printf.eprintf
        "orion trace: warning: trace buffer overflow — %d span(s) dropped\n"
        (Orion.Trace.dropped trace);
    (match csv with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc
          (Printf.sprintf "# schema_version %d\n" Orion.Report.schema_version);
        output_string oc
          (Printf.sprintf "# dropped %d\n" (Orion.Trace.dropped trace));
        output_string oc (Orion.Metrics.csv_header ^ "\n");
        List.iter
          (fun m -> output_string oc (Orion.Metrics.csv_row m ^ "\n"))
          (List.rev !metrics_rows);
        close_out oc;
        Printf.printf "wrote per-pass metrics to %s\n" path);
    0
  in
  let run machines wpm mode app domains procs tcp strategy passes scale
      cost_per_entry out csv =
    match mode with
    | `Sim -> run_sim ~machines ~wpm ~strategy ~passes ~scale ~cost_per_entry
                ~out ~csv
    | (`Parallel | `Distributed) as kind ->
        run_real ~kind ~app ~machines ~wpm ~domains ~procs ~tcp ~passes
          ~scale ~out ~csv
  in
  let mode =
    Arg.(
      value
      & opt
          (enum
             [
               ("sim", `Sim);
               ("parallel", `Parallel);
               ("distributed", `Distributed);
             ])
          `Sim
      & info [ "mode" ] ~docv:"MODE"
          ~doc:
            "what to trace: sim (virtual-time SGD MF on the simulated \
             cluster), parallel (wall-clock --app run on the domain pool), \
             or distributed (wall-clock --app run on real worker processes)")
  in
  let trace_app =
    Arg.(
      value & opt string "mf"
      & info [ "app" ] ~docv:"NAME"
          ~doc:
            "registered app to trace under --mode parallel|distributed \
             (`list` prints the registry)")
  in
  let domains =
    Arg.(
      value & opt int 2
      & info [ "domains" ] ~docv:"N"
          ~doc:"OCaml domains for --mode parallel")
  in
  let procs =
    Arg.(
      value & opt int 2
      & info [ "procs" ] ~docv:"N"
          ~doc:"worker processes for --mode distributed")
  in
  let tcp =
    Arg.(
      value & flag
      & info [ "tcp" ]
          ~doc:
            "use TCP loopback instead of Unix domain sockets (--mode \
             distributed)")
  in
  let strategy =
    let choices =
      [
        ("serial", `Serial);
        ("1d", `One_d);
        ("2d-ordered", `Ordered_2d);
        ("2d-unordered", `Unordered_2d);
      ]
    in
    Arg.(
      value
      & opt (enum choices) `Unordered_2d
      & info [ "strategy"; "s" ] ~docv:"STRATEGY"
          ~doc:
            "execution strategy for --mode sim: serial | 1d | 2d-ordered | \
             2d-unordered")
  in
  let passes =
    Arg.(value & opt int 3 & info [ "passes"; "p" ] ~docv:"N" ~doc:"training passes")
  in
  let scale =
    Arg.(value & opt float 1.0 & info [ "scale" ] ~docv:"S" ~doc:"dataset scale factor")
  in
  let cost_per_entry =
    Arg.(
      value & opt float 6.4e-7
      & info [ "cost-per-entry" ] ~docv:"SEC"
          ~doc:"modeled compute seconds per SGD sample")
  in
  let out =
    Arg.(
      value & opt string "orion-trace.json"
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Chrome trace-event JSON output")
  in
  let csv =
    Arg.(
      value & opt (some string) None
      & info [ "csv" ] ~docv:"FILE" ~doc:"also write per-pass metrics as CSV")
  in
  let term =
    Term.(
      const run $ machines_arg $ wpm_arg $ mode $ trace_app $ domains $ procs
      $ tcp $ strategy $ passes $ scale $ cost_per_entry $ out $ csv)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Export a worker timeline (Chrome trace-event JSON) plus per-pass \
          metrics — from simulated SGD MF (--mode sim), a real domain-pool \
          run (--mode parallel), or a real multi-process run (--mode \
          distributed)")
    term

let tune_cmd =
  (* static vs adaptive on one app/backend: run the planner's schedule,
     run again with the measurement-driven re-planner, then replay the
     adopted schedule sequence and require equal results.  Exit 1 when
     an adopted re-plan was not race-checker-validated or the replay
     diverges. *)
  let run machines wpm log app mode domains procs tcp comms passes scale
      json out =
    setup_log log;
    if app = "list" then begin
      print_registry ();
      0
    end
    else
      match Orion.App.find app with
      | None ->
          Printf.eprintf "orion tune: %s\n" (unknown_app_msg app);
          1
      | Some a -> (
          let scale = resolve_scale scale in
          let mode =
            match mode with
            | `Parallel -> `Parallel domains
            | `Distributed ->
                `Distributed (procs, if tcp then `Tcp else `Unix)
          in
          match
            Orion_tune.Tune_bench.run_app ~app:a ~mode ~passes ~scale
              ~num_machines:machines ~workers_per_machine:wpm ?comms ()
          with
          | exception (Orion.Engine.Distributed_error _ as exn) ->
              Printf.eprintf "orion tune: %s\n"
                (Orion.Engine.distributed_error_to_string exn);
              1
          | r ->
              if json then
                print_endline
                  (Orion.Report.emit ~kind:"tune"
                     (Orion_tune.Tune_bench.result_json r))
              else
                print_string
                  (Fmt.str "%a" Orion_tune.Tune_bench.pp_result r);
              (match out with
              | None -> ()
              | Some path ->
                  let oc = open_out path in
                  output_string oc
                    (Orion.Report.emit ~kind:"tune"
                       (Orion_tune.Tune_bench.result_json r));
                  output_char oc '\n';
                  close_out oc;
                  Printf.printf "wrote %s\n" path);
              if
                r.Orion_tune.Tune_bench.tb_adopted_unvalidated > 0
                || not r.Orion_tune.Tune_bench.tb_replay_equal
              then 1
              else 0)
  in
  let app_arg =
    Arg.(
      value & opt string "slrskew"
      & info [ "app" ] ~docv:"NAME"
          ~doc:
            "registered app to tune (`list` prints the registry); slrskew \
             is the Zipf-skewed workload adaptive re-planning exists for")
  in
  let mode =
    Arg.(
      value
      & opt (enum [ ("parallel", `Parallel); ("distributed", `Distributed) ])
          `Parallel
      & info [ "mode" ] ~docv:"MODE"
          ~doc:"backend to tune on: parallel (domain pool) or distributed \
                (worker processes)")
  in
  let domains =
    Arg.(
      value & opt int 2
      & info [ "domains" ] ~docv:"N" ~doc:"OCaml domains for --mode parallel")
  in
  let procs =
    Arg.(
      value & opt int 2
      & info [ "procs" ] ~docv:"N"
          ~doc:"worker processes for --mode distributed")
  in
  let tcp =
    Arg.(
      value & flag
      & info [ "tcp" ]
          ~doc:
            "use TCP loopback instead of Unix domain sockets (--mode \
             distributed)")
  in
  let comms =
    Arg.(
      value
      & opt (some string) None
      & info [ "comms" ] ~docv:"POLICY"
          ~doc:"communication policy for --mode distributed")
  in
  let passes =
    Arg.(value & opt int 3 & info [ "passes" ] ~docv:"N" ~doc:"training passes")
  in
  let scale =
    Arg.(
      value
      & opt (some float) None
      & info [ "scale" ] ~docv:"S"
          ~doc:"dataset scale factor (default: ORION_BENCH_SCALE, or 1.0)")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"emit the comparison as JSON")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:"also write the JSON comparison to $(docv)")
  in
  let term =
    Term.(
      const run $ machines_arg $ wpm_arg $ log_arg $ app_arg $ mode $ domains
      $ procs $ tcp $ comms $ passes $ scale $ json $ out)
  in
  Cmd.v
    (Cmd.info "tune"
       ~doc:
         "Profile-guided adaptive re-planning: run an app with the static \
          plan and with the measurement-driven re-planner (weighted space \
          cut from measured block costs, race-checked before adoption), \
          compare wall time and straggler ratio, and verify the adaptive \
          result against a static replay of the adopted schedule sequence")
    term

let verify_cmd =
  let run machines wpm log app json schedule pipeline_depth scale =
    setup_log log;
    if app = "list" then begin
      print_registry ();
      0
    end
    else
    let override =
      match schedule with
      | `Auto -> None
      | `One_d -> Some Orion_verify.Verify.Force_1d
      | `Ordered_2d -> Some Orion_verify.Verify.Force_2d_ordered
      | `Unordered_2d -> Some Orion_verify.Verify.Force_2d_unordered
    in
    match
      Orion_verify.Verify.verify_app ~num_machines:machines
        ~workers_per_machine:wpm ?pipeline_depth
        ~scale:(resolve_scale scale) ?schedule_override:override app
    with
    | Error e ->
        prerr_endline ("orion verify: " ^ e);
        2
    | Ok report ->
        print_string
          (if json then Orion_verify.Verify.report_to_json report ^ "\n"
           else Orion_verify.Verify.report_to_string report);
        if report.Orion_verify.Verify.r_passed then 0 else 1
  in
  let app_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "app" ] ~docv:"APP"
          ~doc:"built-in app to verify: mf | slr | lda | gbt")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"emit the report as JSON") in
  let schedule =
    let choices =
      [
        ("auto", `Auto);
        ("1d", `One_d);
        ("2d-ordered", `Ordered_2d);
        ("2d-unordered", `Unordered_2d);
      ]
    in
    Arg.(
      value & opt (enum choices) `Auto
      & info [ "schedule" ] ~docv:"SCHEDULE"
          ~doc:
            "schedule to race-check: auto (the planner's) | 1d | 2d-ordered \
             | 2d-unordered")
  in
  let depth =
    Arg.(
      value
      & opt (some int) None
      & info [ "pipeline-depth" ] ~docv:"N"
          ~doc:"pipeline depth for unordered 2-D schedules")
  in
  let scale =
    Arg.(
      value
      & opt (some float) None
      & info [ "scale" ] ~docv:"S"
          ~doc:
            "dataset scale factor (default: ORION_BENCH_SCALE, or 1.0)")
  in
  let machines =
    Arg.(
      value & opt int 2
      & info [ "machines"; "m" ] ~docv:"N" ~doc:"simulated machines")
  in
  let wpm =
    Arg.(
      value & opt int 2
      & info [ "workers-per-machine"; "w" ] ~docv:"N" ~doc:"workers per machine")
  in
  let term =
    Term.(
      const run $ machines $ wpm $ log_arg $ app_arg $ json $ schedule $ depth
      $ scale)
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Dynamically validate the dependence analysis and race-check the \
          schedule for a built-in app (serial observation, soundness check, \
          adversarial differential execution)")
    term

let () =
  let doc =
    "Orion: automating dependence-aware parallelization of ML training"
  in
  let info = Cmd.info "orion" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            analyze_cmd;
            explain_cmd;
            run_cmd;
            prefetch_cmd;
            apps_cmd;
            bench_cmd;
            generate_cmd;
            data_cmd;
            trace_cmd;
            tune_cmd;
            verify_cmd;
          ]))
