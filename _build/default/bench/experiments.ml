(* The per-table / per-figure experiment harness (see DESIGN.md §4 and
   EXPERIMENTS.md).  Each [figXX]/[tableX] function regenerates the
   rows/series of the corresponding table or figure in the paper's
   evaluation section on scaled-down synthetic datasets.

   Scale and worker counts are reduced so the full harness runs in
   minutes on one machine; set ORION_BENCH_SCALE=2 (or more) to grow
   the datasets. *)

open Orion_baselines
open Orion_apps

let scale =
  match Sys.getenv_opt "ORION_BENCH_SCALE" with
  | Some s -> ( try float_of_string s with Failure _ -> 1.0)
  | None -> 1.0

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let print_trajectory_table ~metric_name trajectories =
  Printf.printf "%-28s" "iteration";
  List.iter (fun t -> Printf.printf " %22s" t.Trajectory.system) trajectories;
  Printf.printf "\n";
  let max_iters =
    List.fold_left
      (fun acc t -> max acc (List.length t.Trajectory.points))
      0 trajectories
  in
  for i = 0 to max_iters - 1 do
    Printf.printf "%-28d" i;
    List.iter
      (fun t ->
        match List.nth_opt t.Trajectory.points i with
        | Some p -> Printf.printf " %22.6g" p.Trajectory.metric
        | None -> Printf.printf " %22s" "-")
      trajectories;
    Printf.printf "\n"
  done;
  Printf.printf "%-28s" (Printf.sprintf "final sim time (s)");
  List.iter
    (fun t -> Printf.printf " %22.3f" (Trajectory.final_time t))
    trajectories;
  Printf.printf "\n";
  ignore metric_name

let print_time_series ~metric_name trajectories =
  Printf.printf "# %s over simulated time\n" metric_name;
  List.iter
    (fun t ->
      Printf.printf "%-24s:" t.Trajectory.system;
      List.iter
        (fun p -> Printf.printf " (%.2fs, %.6g)" p.Trajectory.time p.Trajectory.metric)
        t.Trajectory.points;
      Printf.printf "\n")
    trajectories

(* shared datasets (lazily built once) *)
let netflix = lazy (Orion_data.Ratings.netflix_like ~scale ())
let nytimes = lazy (Orion_data.Corpus.nytimes_like ~scale ())
let clueweb = lazy (Orion_data.Corpus.clueweb_like ~scale ())
let kdd = lazy (Orion_data.Sparse_features.kdd_like ~scale:(scale *. 0.2) ())

(* modeled per-sample costs (documented in EXPERIMENTS.md §calibration) *)
let mf_rank = 16
let lda_topics = 20
let mf_cost = 4e-8 *. float_of_int mf_rank
let lda_cost = 1.6e-8 *. float_of_int lda_topics

let mf_epochs = 12
let lda_epochs = 10

(* the worker counts for convergence figures (paper: 12 machines x 32
   workers; scaled down to keep per-worker state affordable) *)
let conv_machines = 8
let conv_wpm = 2
let conv_workers = conv_machines * conv_wpm

let orion_mf_config =
  {
    Orion_mf.default_config with
    num_machines = conv_machines;
    workers_per_machine = conv_wpm;
    rank = mf_rank;
    step_size = 0.005;
    alpha = 0.05;
    epochs = mf_epochs;
    per_entry_cost = mf_cost;
  }

let bosen_mf_config =
  {
    Bosen_mf.default_config with
    num_machines = conv_machines;
    workers_per_machine = conv_wpm;
    rank = mf_rank;
    step_size = 0.005 /. float_of_int conv_workers;
    alpha = 0.05;
    epochs = mf_epochs;
    per_entry_cost = mf_cost;
  }

let orion_lda_config =
  {
    Orion_lda.default_config with
    num_machines = conv_machines;
    workers_per_machine = conv_wpm;
    num_topics = lda_topics;
    epochs = lda_epochs;
    per_token_cost = lda_cost;
  }

let bosen_lda_config =
  {
    Bosen_lda.default_config with
    num_machines = conv_machines;
    workers_per_machine = conv_wpm;
    num_topics = lda_topics;
    epochs = lda_epochs;
    per_token_cost = lda_cost;
  }

(* ------------------------------------------------------------------ *)
(* Table 1: qualitative system comparison                              *)
(* ------------------------------------------------------------------ *)

let table1 () =
  section "Table 1: systems for offline machine learning training";
  let rows =
    [
      ("Dataflow", "Spark, DryadLINQ", "no", "dataflow");
      ("Dataflow w/ mutable state", "TensorFlow", "yes", "dataflow");
      ("Parameter Server", "parameter server, Bosen", "yes", "imperative");
      ("PS w/ scheduling", "STRADS", "yes", "imperative");
      ("Graph Processing", "PowerGraph, PowerLyra", "limited", "vertex");
      ("Orion (this repo)", "Orion", "yes", "imperative");
    ]
  in
  Printf.printf "%-28s %-28s %-8s %-12s\n" "Category" "Examples" "DSM"
    "Paradigm";
  List.iter
    (fun (a, b, c, d) -> Printf.printf "%-28s %-28s %-8s %-12s\n" a b c d)
    rows

(* ------------------------------------------------------------------ *)
(* Table 2: applications and their derived parallelizations            *)
(* ------------------------------------------------------------------ *)

let count_lines s =
  List.length
    (List.filter
       (fun l -> String.trim l <> "")
       (String.split_on_char '\n' s))

let table2 () =
  section "Table 2: ML applications parallelized by Orion";
  Printf.printf "%-14s %-28s %-26s %5s  %s\n" "Acronym" "Model"
    "Learning algorithm" "LoC" "Derived parallelization";
  let analyze_with register script =
    let session =
      Orion.create_session ~num_machines:2 ~workers_per_machine:2 ()
    in
    register session;
    match Orion.analyze_script session script with
    | plan :: _ ->
        let s = Orion.Plan.strategy_to_string plan.Orion.Plan.strategy in
        if plan.Orion.Plan.ordered then s ^ " ordered" else s ^ " unordered"
    | [] -> "-"
  in
  let data = Lazy.force netflix in
  let mf_register session =
    let model =
      Sgd_mf.init_model ~rank:mf_rank ~num_users:data.num_users
        ~num_items:data.num_items ()
    in
    Sgd_mf.register_arrays session ~ratings:data.ratings model
  in
  let corpus = Lazy.force nytimes in
  let lda_register session =
    let model = Lda.init_model ~num_topics:lda_topics ~corpus () in
    Lda.register_arrays session ~tokens:corpus.tokens model
  in
  let slr_data = Lazy.force kdd in
  let slr_register session =
    let model = Slr.init_model ~num_features:slr_data.num_features () in
    Slr.register_arrays session ~data:slr_data model
  in
  let gbt_register session =
    Orion.register_meta session ~name:"feature_index" ~dims:[| 64 |] ~count:64 ();
    Orion.register_meta session ~name:"split_gain" ~dims:[| 64 |] ()
  in
  List.iter
    (fun (acr, model, algo, loc, strat) ->
      Printf.printf "%-14s %-28s %-26s %5d  %s\n" acr model algo loc strat)
    [
      ( "SGD MF",
        "Matrix Factorization",
        "SGD",
        count_lines Sgd_mf.script,
        analyze_with mf_register Sgd_mf.script );
      ( "SGD MF AdaRev",
        "Matrix Factorization",
        "SGD w/ Adaptive Revision",
        count_lines Sgd_mf.script + 6,
        analyze_with mf_register Sgd_mf.script );
      ( "SLR",
        "Sparse Logistic Regression",
        "SGD",
        count_lines Slr.script,
        analyze_with slr_register Slr.script );
      ( "SLR AdaRev",
        "Sparse Logistic Regression",
        "SGD w/ Adaptive Revision",
        count_lines Slr.script + 6,
        analyze_with slr_register Slr.script );
      ( "LDA",
        "Latent Dirichlet Allocation",
        "Collapsed Gibbs Sampling",
        count_lines Lda.script,
        analyze_with lda_register Lda.script );
      ( "GBT",
        "Gradient Boosted Tree",
        "Gradient Boosting",
        count_lines Gbt.script,
        analyze_with gbt_register Gbt.script );
    ]

(* ------------------------------------------------------------------ *)
(* Fig 9a: time per iteration vs number of workers                     *)
(* ------------------------------------------------------------------ *)

let fig9a () =
  section "Fig 9a: time per iteration, serial vs Orion (workers sweep)";
  let data = Lazy.force netflix in
  let corpus = Lazy.force nytimes in
  let serial_mf =
    Trajectory.avg_time_per_iteration
      (Orion_mf.train_serial
         ~config:{ orion_mf_config with epochs = 2 }
         ~data ())
  in
  let serial_lda =
    Trajectory.avg_time_per_iteration
      (Orion_lda.train_serial
         ~config:{ orion_lda_config with epochs = 2 }
         ~corpus ())
  in
  Printf.printf "%-10s %18s %18s\n" "workers" "SGD MF (s/iter)" "LDA (s/iter)";
  Printf.printf "%-10s %18.4f %18.4f\n" "serial" serial_mf serial_lda;
  List.iter
    (fun workers ->
      let machines = max 1 (workers / 32) in
      let wpm = workers / machines in
      let mf =
        (Orion_mf.train
           ~config:
             {
               orion_mf_config with
               num_machines = machines;
               workers_per_machine = wpm;
               epochs = 2;
             }
           ~data ())
          .trajectory
      in
      let lda =
        (Orion_lda.train
           ~config:
             {
               orion_lda_config with
               num_machines = machines;
               workers_per_machine = wpm;
               epochs = 2;
             }
           ~corpus ())
          .trajectory
      in
      Printf.printf "%-10d %18.4f %18.4f\n" workers
        (Trajectory.avg_time_per_iteration mf)
        (Trajectory.avg_time_per_iteration lda))
    [ 1; 2; 4; 8; 16; 32; 64; 128; 256; 384 ]

(* ------------------------------------------------------------------ *)
(* Fig 9b / 9c: per-iteration convergence of parallelization schemes   *)
(* ------------------------------------------------------------------ *)

let fig9b () =
  section
    "Fig 9b: SGD MF (netflix-like) convergence per iteration \
     (serial / data-parallel / dep-aware unordered / dep-aware ordered)";
  let data = Lazy.force netflix in
  let serial = Orion_mf.train_serial ~config:orion_mf_config ~data () in
  let dp, _ = Bosen_mf.train ~config:bosen_mf_config ~data () in
  let unord = (Orion_mf.train ~config:orion_mf_config ~data ()).trajectory in
  let ord =
    (Orion_mf.train ~config:{ orion_mf_config with ordered = true } ~data ())
      .trajectory
  in
  print_trajectory_table ~metric_name:"training loss"
    [ serial; dp; unord; ord ]

let fig9c () =
  section
    "Fig 9c: LDA (nytimes-like) convergence per iteration \
     (serial / data-parallel / dep-aware unordered / dep-aware ordered)";
  let corpus = Lazy.force nytimes in
  let serial = Orion_lda.train_serial ~config:orion_lda_config ~corpus () in
  let dp, _ = Bosen_lda.train ~config:bosen_lda_config ~corpus () in
  let unord = (Orion_lda.train ~config:orion_lda_config ~corpus ()).trajectory in
  let ord =
    (Orion_lda.train ~config:{ orion_lda_config with ordered = true } ~corpus ())
      .trajectory
  in
  print_trajectory_table ~metric_name:"log likelihood"
    [ serial; dp; unord; ord ]

(* ------------------------------------------------------------------ *)
(* Table 3: ordered vs unordered 2D parallelization                    *)
(* ------------------------------------------------------------------ *)

let table3 () =
  section "Table 3: time per iteration (s), ordered vs unordered 2D";
  let data = Lazy.force netflix in
  let corpus = Lazy.force nytimes in
  let row name ordered_traj unordered_traj =
    let t_o = Trajectory.avg_time_per_iteration ordered_traj in
    let t_u = Trajectory.avg_time_per_iteration unordered_traj in
    Printf.printf "%-22s %10.4f %10.4f %9.1fx\n" name t_o t_u (t_o /. t_u)
  in
  Printf.printf "%-22s %10s %10s %10s\n" "" "Ordered" "Unordered" "Speedup";
  let short = { orion_mf_config with epochs = 4 } in
  row "SGD MF (netflix)"
    (Orion_mf.train ~config:{ short with ordered = true } ~data ()).trajectory
    (Orion_mf.train ~config:short ~data ()).trajectory;
  let short_ar = { short with adarev = true } in
  row "SGD MF AdaRev"
    (Orion_mf.train ~config:{ short_ar with ordered = true } ~data ()).trajectory
    (Orion_mf.train ~config:short_ar ~data ()).trajectory;
  let lda_short = { orion_lda_config with epochs = 4 } in
  row "LDA (nytimes)"
    (Orion_lda.train ~config:{ lda_short with ordered = true } ~corpus ())
      .trajectory
    (Orion_lda.train ~config:lda_short ~corpus ()).trajectory

(* ------------------------------------------------------------------ *)
(* Fig 10: Orion vs Bosen                                              *)
(* ------------------------------------------------------------------ *)

let fig10ab () =
  section
    "Fig 10a/10b: SGD MF (AdaRev): Bosen DP / Bosen CM+AdaRev / Orion / \
     Orion AdaRev";
  let data = Lazy.force netflix in
  let dp, _ = Bosen_mf.train ~config:bosen_mf_config ~data () in
  let cm_adarev, _ =
    Bosen_mf.train
      ~config:{ bosen_mf_config with adarev = true; comm_rounds = 6 }
      ~data ()
  in
  let orion = (Orion_mf.train ~config:orion_mf_config ~data ()).trajectory in
  let orion_ar =
    (Orion_mf.train ~config:{ orion_mf_config with adarev = true } ~data ())
      .trajectory
  in
  let all = [ dp; cm_adarev; orion; orion_ar ] in
  print_trajectory_table ~metric_name:"training loss" all;
  print_time_series ~metric_name:"training loss" all

let fig10c () =
  section "Fig 10c: LDA (clueweb-like): Bosen DP / Bosen CM / Orion, over time";
  let corpus = Lazy.force clueweb in
  let cfg = { bosen_lda_config with epochs = 8 } in
  let dp, _ = Bosen_lda.train ~config:cfg ~corpus () in
  let cm, _ = Bosen_lda.train ~config:{ cfg with comm_rounds = 6 } ~corpus () in
  let orion =
    (Orion_lda.train ~config:{ orion_lda_config with epochs = 8 } ~corpus ())
      .trajectory
  in
  print_time_series ~metric_name:"log likelihood" [ dp; cm; orion ]

(* ------------------------------------------------------------------ *)
(* Fig 11: Orion vs STRADS                                             *)
(* ------------------------------------------------------------------ *)

let fig11a () =
  section "Fig 11a: SGD MF AdaRev vs STRADS (manual model parallelism)";
  let data = Lazy.force netflix in
  let strads =
    Strads_mf.train
      ~config:
        {
          Strads_mf.default_config with
          num_machines = conv_machines;
          workers_per_machine = conv_wpm;
          rank = mf_rank;
          alpha = 0.05;
          epochs = mf_epochs;
          per_entry_cost = mf_cost;
        }
      ~data ()
  in
  let orion =
    (Orion_mf.train ~config:{ orion_mf_config with adarev = true } ~data ())
      .trajectory
  in
  print_trajectory_table ~metric_name:"training loss" [ strads; orion ];
  print_time_series ~metric_name:"training loss" [ strads; orion ]

let fig11bc () =
  section "Fig 11b/11c: LDA vs STRADS, over time and iterations";
  let corpus = Lazy.force clueweb in
  let epochs = 8 in
  let strads =
    Strads_lda.train
      ~config:
        {
          Strads_lda.num_machines = conv_machines;
          workers_per_machine = conv_wpm;
          num_topics = lda_topics;
          epochs;
          per_token_cost = lda_cost /. 2.5;
        }
      ~corpus ()
  in
  let orion =
    (Orion_lda.train ~config:{ orion_lda_config with epochs } ~corpus ())
      .trajectory
  in
  print_trajectory_table ~metric_name:"log likelihood" [ strads; orion ];
  print_time_series ~metric_name:"log likelihood" [ strads; orion ]

(* ------------------------------------------------------------------ *)
(* Fig 12: bandwidth usage                                             *)
(* ------------------------------------------------------------------ *)

let fig12 () =
  section
    "Fig 12: cluster bandwidth usage (Mbps per 1ms window), LDA nytimes";
  let corpus = Lazy.force nytimes in
  let cfg = { bosen_lda_config with epochs = 5 } in
  let cm_recorder = Orion_sim.Recorder.create ~bin_width_sec:0.001 () in
  let _ =
    Bosen_lda.train ~recorder:cm_recorder
      ~config:{ cfg with comm_rounds = 6 } ~corpus ()
  in
  let orion_recorder = Orion_sim.Recorder.create ~bin_width_sec:0.001 () in
  let _ =
    Orion_lda.train ~recorder:orion_recorder
      ~config:{ orion_lda_config with epochs = 5 } ~corpus ()
  in
  let show name r =
    let series = Orion_sim.Recorder.mbps_series r in
    Printf.printf "%-22s total %.1f MB; series (Mbps):" name
      (Orion_sim.Recorder.total_bytes r /. 1e6);
    Array.iteri
      (fun i mbps -> if i < 40 then Printf.printf " %.0f" mbps)
      series;
    Printf.printf "\n"
  in
  show "Bosen CM" cm_recorder;
  show "Orion" orion_recorder;
  Printf.printf
    "(Bosen CM communicates aggressively under its bandwidth budget; Orion \
     only rotates partitions.)\n"

(* ------------------------------------------------------------------ *)
(* Fig 13: Orion vs TensorFlow                                         *)
(* ------------------------------------------------------------------ *)

let fig13 () =
  section "Fig 13: SGD MF, Orion vs TensorFlow-style minibatch dataflow";
  let data = Lazy.force netflix in
  let orion =
    (Orion_mf.train
       ~config:{ orion_mf_config with num_machines = 1; workers_per_machine = 16 }
       ~data ())
      .trajectory
  in
  let big = max 1000 (data.num_ratings / 4) in
  let small = max 250 (data.num_ratings / 32) in
  let tf_cfg b =
    {
      Tf_mf.default_config with
      rank = mf_rank;
      minibatch = b;
      step_size = 2.0;
      epochs = mf_epochs;
      per_entry_cost = mf_cost;
    }
  in
  let tf_big = Tf_mf.train ~config:(tf_cfg big) ~data () in
  print_time_series ~metric_name:"training loss" [ orion; tf_big ];
  Printf.printf "\nFig 13b: time (s) per data pass\n";
  Printf.printf "%-28s %10.4f\n" "Orion (16 workers)"
    (Trajectory.avg_time_per_iteration orion);
  List.iter
    (fun b ->
      Printf.printf "%-28s %10.4f\n"
        (Printf.sprintf "TF (batch %d)" b)
        (Tf_mf.seconds_per_pass (tf_cfg b) ~num_entries:data.num_ratings))
    [ big; small ]

(* ------------------------------------------------------------------ *)
(* §6.3: bulk prefetching                                              *)
(* ------------------------------------------------------------------ *)

let prefetch () =
  section "S6.3: SLR bulk prefetching (seconds per pass)";
  let data = Lazy.force kdd in
  Printf.printf "samples %d, features %d, avg nnz %.1f\n" data.num_samples
    data.num_features data.avg_nnz;
  let run mode =
    Slr_runner.train
      ~config:
        {
          Slr_runner.default_config with
          mode;
          step_size = 0.01;
          epochs = 2;
          num_machines = 1;
          workers_per_machine = 4;
          per_sample_cost = 2e-6;
        }
      ~data ()
  in
  let r_none = run Slr_runner.No_prefetch in
  let r_pre = run Slr_runner.Prefetch in
  let r_cached = run Slr_runner.Prefetch_cached in
  Printf.printf "%-34s %12s\n" "access mode" "s/pass";
  let t (r : Slr_runner.result) =
    r.Slr_runner.seconds_per_pass.(Array.length r.Slr_runner.seconds_per_pass - 1)
  in
  Printf.printf "%-34s %12.4f\n" "remote random access" (t r_none);
  Printf.printf "%-34s %12.4f\n" "synthesized bulk prefetch" (t r_pre);
  Printf.printf "%-34s %12.4f\n" "prefetch w/ cached indices" (t r_cached);
  Printf.printf "\nsynthesized prefetch program:\n%s"
    (Orion.Pretty.program_to_string r_pre.Slr_runner.prefetch_program)

(* ------------------------------------------------------------------ *)
(* Ablations beyond the paper                                          *)
(* ------------------------------------------------------------------ *)

let ablation_partitioning () =
  section "Ablation: histogram-balanced vs equal-width partitioning (skewed)";
  let data =
    Orion_data.Ratings.generate
      ~num_users:(int_of_float (400.0 *. scale))
      ~num_items:(int_of_float (300.0 *. scale))
      ~num_ratings:(int_of_float (20_000.0 *. scale))
      ~user_skew:1.2 ~item_skew:1.2 ()
  in
  let workers = 8 in
  let imbalance sched =
    let sizes =
      Array.to_list
        (Array.map
           (fun row ->
             Array.fold_left
               (fun acc b ->
                 acc + Array.length b.Orion.Schedule.entries)
               0 row)
           sched.Orion.Schedule.blocks)
    in
    let mx = List.fold_left max 0 sizes in
    let avg =
      float_of_int (List.fold_left ( + ) 0 sizes)
      /. float_of_int (List.length sizes)
    in
    float_of_int mx /. avg
  in
  (* histogram-balanced (the default) *)
  let balanced =
    Orion.Schedule.partition_2d data.ratings ~space_dim:0 ~time_dim:1
      ~space_parts:workers ~time_parts:(workers * 2)
  in
  (* equal-width: emulate by bypassing the histogram *)
  let dims = Orion.Dist_array.dims data.ratings in
  let sb = Orion.Partitioner.equal_ranges ~dim_size:dims.(0) ~parts:workers in
  let tb =
    Orion.Partitioner.equal_ranges ~dim_size:dims.(1) ~parts:(workers * 2)
  in
  let equal_sizes = Array.make workers 0 in
  Orion.Dist_array.iter
    (fun key _ ->
      let s = Orion.Partitioner.part_of ~boundaries:sb key.(0) in
      ignore (Orion.Partitioner.part_of ~boundaries:tb key.(1));
      equal_sizes.(s) <- equal_sizes.(s) + 1)
    data.ratings;
  let eq_mx = Array.fold_left max 0 equal_sizes in
  let eq_avg =
    float_of_int (Array.fold_left ( + ) 0 equal_sizes)
    /. float_of_int workers
  in
  Printf.printf "max/avg worker load, histogram-balanced: %.2f\n"
    (imbalance balanced);
  Printf.printf "max/avg worker load, equal-width       : %.2f\n"
    (float_of_int eq_mx /. eq_avg)

let ablation_pipeline_depth () =
  section "Ablation: pipelining depth (time partitions per worker)";
  let data = Lazy.force netflix in
  Printf.printf "%-8s %14s\n" "depth" "s/iteration";
  List.iter
    (fun depth ->
      let t =
        (Orion_mf.train
           ~config:{ orion_mf_config with pipeline_depth = depth; epochs = 3 }
           ~data ())
          .trajectory
      in
      Printf.printf "%-8d %14.4f\n" depth (Trajectory.avg_time_per_iteration t))
    [ 1; 2; 4 ]

let ablation_cm_budget () =
  section "Ablation: Bosen CM bandwidth budget sweep (SGD MF final loss)";
  let data = Lazy.force netflix in
  Printf.printf "%-16s %14s %16s\n" "budget (Mbps)" "final loss" "bytes sent (MB)";
  List.iter
    (fun budget ->
      let t, r =
        Bosen_mf.train
          ~config:
            {
              bosen_mf_config with
              comm_rounds = 6;
              bandwidth_budget_mbps = budget;
              epochs = 8;
            }
          ~data ()
      in
      Printf.printf "%-16.0f %14.4f %16.2f\n" budget
        (Trajectory.final_metric t)
        (Orion_sim.Recorder.total_bytes r /. 1e6))
    [ 100.0; 400.0; 1600.0; 6400.0 ]

let ablation_unimodular () =
  section
    "Ablation: unimodular (wavefront) parallelization of a skewed stencil";
  let rows = int_of_float (160.0 *. scale)
  and cols = int_of_float (120.0 *. scale) in
  let grid = Stencil.make_grid ~rows ~cols in
  (* heavy per-cell work (e.g. alignment scoring): the wavefront has
     ~rows+cols synchronization steps, so cheap cells would be
     barrier-bound *)
  let per_cell = 2e-5 in
  (* serial sweep *)
  let serial_cluster =
    Orion.Cluster.create ~num_machines:1 ~workers_per_machine:1
      ~cost:Orion.Cost_model.default ()
  in
  let serial_model = Stencil.init_model ~rows ~cols () in
  let serial_stats =
    Orion.Executor.run_serial serial_cluster
      ~compute:(Orion.Executor.Per_entry per_cell)
      grid (Stencil.body serial_model)
  in
  Printf.printf "%-28s %12.4f s\n" "serial lexicographic sweep"
    serial_stats.Orion.Executor.sim_time;
  List.iter
    (fun workers ->
      let session =
        Orion.create_session ~num_machines:workers ~workers_per_machine:1 ()
      in
      let model = Stencil.init_model ~rows ~cols () in
      Stencil.register_arrays session ~grid model;
      let plan = List.hd (Orion.analyze_script session Stencil.script) in
      let compiled = Orion.compile session ~plan ~iter:grid () in
      let stats =
        Orion.execute session compiled
          ~compute:(Orion.Executor.Per_entry per_cell)
          ~body:(Stencil.body model) ()
      in
      let exact = model.Stencil.s = serial_model.Stencil.s in
      Printf.printf "%-28s %12.4f s   (%s, bitwise-equal result: %b)\n"
        (Printf.sprintf "wavefront, %d workers" workers)
        stats.Orion.Executor.sim_time
        (Orion.Plan.strategy_to_string plan.Orion.Plan.strategy)
        exact)
    [ 2; 4; 8 ]

let ablation_gbt () =
  section "Ablation: GBT split finding, serial vs Orion-scheduled (1D)";
  let data =
    Gbt.synthetic
      ~num_samples:(int_of_float (600.0 *. scale))
      ~num_features:12 ()
  in
  let params = { Gbt.default_params with num_trees = 15 } in
  let _, serial_traj = Gbt.train ~params data in
  (* each per-feature scan is charged to a worker under a 1D schedule *)
  let cluster =
    Orion.Cluster.create ~num_machines:4 ~workers_per_machine:1
      ~cost:Orion.Cost_model.default ()
  in
  let scan fs find =
    let results = List.map find fs in
    List.iteri
      (fun i _ ->
        Orion.Cluster.compute cluster
          ~worker:(i mod Orion.Cluster.num_workers cluster)
          5e-5)
      fs;
    Orion.Cluster.barrier cluster;
    results
  in
  let model, par_traj = Gbt.train ~params ~parallel_feature_scan:scan data in
  Printf.printf "serial final log-loss   : %.4f\n"
    serial_traj.(params.Gbt.num_trees);
  Printf.printf "parallel final log-loss : %.4f (identical: %b)\n"
    par_traj.(params.Gbt.num_trees)
    (serial_traj = par_traj);
  Printf.printf "accuracy                : %.3f\n" (Gbt.accuracy model data);
  Printf.printf "simulated split-find time with 4 workers: %.4f s\n"
    (Orion.Cluster.now cluster)

let all () =
  table1 ();
  table2 ();
  fig9a ();
  fig9b ();
  fig9c ();
  table3 ();
  fig10ab ();
  fig10c ();
  fig11a ();
  fig11bc ();
  fig12 ();
  fig13 ();
  prefetch ();
  ablation_partitioning ();
  ablation_pipeline_depth ();
  ablation_cm_budget ();
  ablation_unimodular ();
  ablation_gbt ()

let registry =
  [
    ("table1", table1);
    ("table2", table2);
    ("fig9a", fig9a);
    ("fig9b", fig9b);
    ("fig9c", fig9c);
    ("table3", table3);
    ("fig10ab", fig10ab);
    ("fig10c", fig10c);
    ("fig11a", fig11a);
    ("fig11bc", fig11bc);
    ("fig12", fig12);
    ("fig13", fig13);
    ("prefetch", prefetch);
    ("ablation_partitioning", ablation_partitioning);
    ("ablation_pipeline_depth", ablation_pipeline_depth);
    ("ablation_cm_budget", ablation_cm_budget);
    ("ablation_unimodular", ablation_unimodular);
    ("ablation_gbt", ablation_gbt);
  ]
