bench/main.mli:
