(* Wavefront parallelization via unimodular transformation — the
   paper's §3.2 case 3.  A skewed stencil recurrence

       S[i, j] = a·S[i-1, j+1] + b·S[i, j-1] + c·V[i, j]

   has dependence vectors (1,-1) and (0,1): no dimension is
   dependence-free and no dimension pair satisfies the 2D criterion,
   so Orion derives a skewing transformation and schedules the
   transformed outer dimension sequentially (wavefronts).  Because the
   schedule preserves all dependences, the result is bit-for-bit equal
   to the serial lexicographic sweep.

   Run with:  dune exec examples/wavefront.exe *)

open Orion_apps

let () =
  let rows = 120 and cols = 90 in
  let grid = Stencil.make_grid ~rows ~cols in

  let session =
    Orion.create_session ~num_machines:4 ~workers_per_machine:1 ()
  in
  let model = Stencil.init_model ~rows ~cols () in
  Stencil.register_arrays session ~grid model;

  print_endline "=== What Orion derived ===";
  let plan = List.hd (Orion.analyze_script session Stencil.script) in
  print_string (Orion.Plan.explain_to_string plan);

  (match plan.Orion.Plan.strategy with
  | Orion.Plan.Two_d_unimodular { matrix; inverse; _ } ->
      Printf.printf "\ntransformation T      = %s\n"
        (Orion.Unimodular.matrix_to_string matrix);
      Printf.printf "inverse T^-1          = %s\n"
        (Orion.Unimodular.matrix_to_string inverse);
      List.iter
        (fun d ->
          Printf.printf "T · %-8s -> %s   (carried by the outer loop)\n"
            (Orion.Depvec.to_string d)
            (Orion.Depvec.to_string (Orion.Unimodular.transform_dvec matrix d)))
        plan.Orion.Plan.dep_vectors
  | _ -> ());

  print_endline "\n=== Executing under the wavefront schedule ===";
  let compiled = Orion.compile session ~plan ~iter:grid () in
  let stats =
    Orion.execute session compiled
      ~compute:(Orion.Executor.Per_entry 2e-5)
      ~body:(Stencil.body model) ()
  in
  Printf.printf "cells executed : %d (in %d wavefront steps)\n"
    stats.Orion.Executor.entries_executed stats.Orion.Executor.steps;
  Printf.printf "simulated time : %.4f s on 4 workers\n"
    stats.Orion.Executor.sim_time;

  (* verify against the serial sweep *)
  let reference = Stencil.init_model ~rows ~cols () in
  Stencil.run_serial reference grid;
  Printf.printf "bitwise equal to the serial sweep: %b\n"
    (model.Stencil.s = reference.Stencil.s);
  Printf.printf "state fingerprint: %.6f\n" (Stencil.fingerprint model)
