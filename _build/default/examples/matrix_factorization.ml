(* Matrix factorization for movie recommendation — the paper's running
   example, at benchmark fidelity: the native loop body stands in for
   the JIT-generated code, and four systems race on the same dataset:
   serial, Orion (dependence-aware), Bösen-style data parallelism, and
   a TensorFlow-style minibatch program.

   Run with:  dune exec examples/matrix_factorization.exe *)

open Orion_baselines

let () =
  let data = Orion_data.Ratings.netflix_like ~scale:0.4 () in
  Printf.printf "dataset: %d users x %d items, %d ratings\n%!"
    data.num_users data.num_items data.num_ratings;

  let epochs = 12 in
  let cfg =
    {
      Orion_mf.default_config with
      num_machines = 4;
      workers_per_machine = 4;
      rank = 16;
      step_size = 0.005;
      epochs;
      per_entry_cost = 2e-6;
    }
  in

  let serial = Orion_mf.train_serial ~config:cfg ~data () in
  let orion = Orion_mf.train ~config:cfg ~data () in
  let bosen, _ =
    Bosen_mf.train
      ~config:
        {
          Bosen_mf.default_config with
          num_machines = 4;
          workers_per_machine = 4;
          rank = 16;
          step_size = 0.005 /. 16.0;
          epochs;
          per_entry_cost = 2e-6;
        }
      ~data ()
  in
  let tf =
    Tf_mf.train
      ~config:
        {
          Tf_mf.default_config with
          rank = 16;
          minibatch = data.num_ratings / 4;
          step_size = 2.0;
          epochs;
          per_entry_cost = 2e-6;
        }
      ~data ()
  in

  print_endline "\n=== What Orion derived ===";
  print_string (Orion.Plan.explain_to_string orion.Orion_mf.plan);

  print_endline "\n=== Convergence (training loss per pass) ===";
  let show t =
    Printf.printf "%-24s" t.Trajectory.system;
    List.iter
      (fun p -> Printf.printf " %8.1f" p.Trajectory.metric)
      t.Trajectory.points;
    Printf.printf "   (%.2fs simulated)\n" (Trajectory.final_time t)
  in
  show serial;
  show orion.Orion_mf.trajectory;
  show bosen;
  show tf;
  Printf.printf
    "\nOrion preserves the dependences, so its per-pass losses track the \
     serial run;\ndata parallelism and giant minibatches need many more \
     passes for the same loss.\n"
