(* Sparse logistic regression with bulk prefetching — the §6.3
   experiment.  The weight subscripts depend on each sample's nonzero
   features, so Orion falls back to 1D data parallelism with a
   DistArray Buffer, serves the weights from server processes, and
   *synthesizes* a prefetch program from the loop body.

   Run with:  dune exec examples/sparse_logistic_regression.exe *)

open Orion_baselines

let () =
  let data =
    Orion_data.Sparse_features.generate ~num_samples:400 ~num_features:2000
      ~nnz_per_sample:15 ()
  in
  Printf.printf "dataset: %d samples, %d features, avg nnz %.1f\n%!"
    data.num_samples data.num_features data.avg_nnz;

  let run mode =
    Slr_runner.train
      ~config:
        {
          Slr_runner.default_config with
          mode;
          (* data parallelism: step tuned down by the worker count *)
          step_size = 0.01;
          epochs = 5;
          num_machines = 1;
          workers_per_machine = 4;
        }
      ~data ()
  in
  let r_none = run Slr_runner.No_prefetch in
  let r_pre = run Slr_runner.Prefetch in
  let r_cached = run Slr_runner.Prefetch_cached in

  print_endline "=== What Orion derived ===";
  print_string (Orion.Plan.explain_to_string r_pre.Slr_runner.plan);

  print_endline "\n=== The synthesized prefetch program ===";
  print_string (Orion.Pretty.program_to_string r_pre.Slr_runner.prefetch_program);

  print_endline "\n=== Seconds per pass (simulated, steady state) ===";
  let report (r : Slr_runner.result) label =
    let n = Array.length r.Slr_runner.seconds_per_pass in
    Printf.printf "%-30s %10.4f s\n" label r.Slr_runner.seconds_per_pass.(n - 1)
  in
  report r_none "remote random access";
  report r_pre "synthesized bulk prefetch";
  report r_cached "prefetch w/ cached indices";

  Printf.printf "\n=== Convergence (mean logistic loss) ===\n";
  List.iter
    (fun p -> Printf.printf "pass %d: %.4f\n" p.Trajectory.iteration p.Trajectory.metric)
    r_pre.Slr_runner.trajectory.Trajectory.points
