(* Quickstart: write a *serial* OrionScript program, hand it to Orion,
   and watch it get analyzed, planned, and executed on a simulated
   cluster — the end-to-end workflow of the paper's Fig. 5/Fig. 6.

   Run with:  dune exec examples/quickstart.exe *)

let script =
  {|
step_size = 0.1
for iter = 1:10
  @parallel_for for (key, rv) in ratings
    W_row = W[:, key[1]]
    H_row = H[:, key[2]]
    pred = dot(W_row, H_row)
    diff = rv - pred
    W_grad = -2.0 * diff * H_row
    H_grad = -2.0 * diff * W_row
    W[:, key[1]] = W_row - W_grad * step_size
    H[:, key[2]] = H_row - H_grad * step_size
  end
end
err = 0.0
@parallel_for for (key, rv) in ratings
  pred = dot(W[:, key[1]], H[:, key[2]])
  err += abs2(rv - pred)
end
final_err = get_aggregated_value("err")
|}

let () =
  (* a simulated 4-machine cluster with 2 workers per machine *)
  let session =
    Orion.create_session ~num_machines:4 ~workers_per_machine:2 ()
  in

  (* create DistArrays: a small synthetic ratings matrix and the two
     factor matrices, and register them with the session *)
  let data =
    Orion_data.Ratings.generate ~num_users:50 ~num_items:40 ~num_ratings:600
      ~rank_truth:4 ()
  in
  let rank = 8 in
  let w = Orion.Dist_array.fill_dense ~name:"W" ~dims:[| rank; 50 |] 0.1 in
  let h = Orion.Dist_array.fill_dense ~name:"H" ~dims:[| rank; 40 |] 0.1 in
  Orion.register session data.ratings;
  Orion.register session w;
  Orion.register session h;

  (* 1. static analysis: show what Orion derives for the training loop *)
  print_endline "=== Static analysis of the training loop ===";
  (match Orion.analyze_script session script with
  | plan :: _ -> print_string (Orion.Plan.explain_to_string plan)
  | [] -> print_endline "no parallel loop found");

  (* 2. run the whole driver program: the parallel loops execute under
     the derived schedule on the simulated cluster *)
  print_endline "\n=== Running the program ===";
  let env, stats = Orion.run_script session script in
  let final_err = Orion.Value.to_float (Orion.Interp.get_var env "final_err") in
  Printf.printf "training loss after 10 passes: %.4f\n" final_err;
  Printf.printf "loop executions: %d\n" (List.length stats);
  Printf.printf "simulated cluster time: %.3f s\n"
    (Orion.Cluster.now session.Orion.cluster);
  Printf.printf "bytes communicated: %.0f\n"
    session.Orion.cluster.Orion.Cluster.bytes_sent
