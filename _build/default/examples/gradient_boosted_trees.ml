(* Gradient boosted trees (Table 2's "GBT" application): second-order
   boosting with histogram split finding.  The per-feature split search
   is the loop Orion parallelizes 1D — here the parallel scan is routed
   through an Orion 1D schedule on a simulated cluster and compared to
   the serial scan.

   Run with:  dune exec examples/gradient_boosted_trees.exe *)

open Orion_apps

let () =
  let data = Gbt.synthetic ~num_samples:800 ~num_features:10 () in
  Printf.printf "dataset: %d samples x %d features\n%!"
    (Array.length data.Gbt.labels)
    (Array.length data.Gbt.features.(0));

  (* show what the analyzer derives for the split-finding loop *)
  let session =
    Orion.create_session ~num_machines:2 ~workers_per_machine:2 ()
  in
  Orion.register_meta session ~name:"feature_index" ~dims:[| 10 |] ~count:10 ();
  Orion.register_meta session ~name:"split_gain" ~dims:[| 10 |] ();
  print_endline "=== What Orion derived for the split-finding loop ===";
  (match Orion.analyze_script session Gbt.script with
  | plan :: _ -> print_string (Orion.Plan.explain_to_string plan)
  | [] -> ());

  (* a feature-scan routed through the simulated 1D schedule *)
  let cluster = session.Orion.cluster in
  let parallel_feature_scan fs find =
    let results = List.map find fs in
    (* charge the scan to the workers round-robin + a barrier *)
    List.iteri
      (fun i _ ->
        Orion.Cluster.compute cluster
          ~worker:(i mod Orion.Cluster.num_workers cluster)
          1e-5)
      fs;
    Orion.Cluster.barrier cluster;
    results
  in

  let params = { Gbt.default_params with num_trees = 25 } in
  let model, traj = Gbt.train ~params ~parallel_feature_scan data in
  print_endline "\n=== Training log-loss per boosting round ===";
  Array.iteri
    (fun i l -> if i mod 5 = 0 then Printf.printf "round %2d: %.4f\n" i l)
    traj;
  Printf.printf "final accuracy: %.3f\n" (Gbt.accuracy model data);
  Printf.printf "simulated time for parallel split finding: %.4f s\n"
    (Orion.Cluster.now cluster)
