(* Topic modeling with LDA (collapsed Gibbs sampling) on a synthetic
   news-like corpus.  Shows Orion's 2D-unordered parallelization with a
   DistArray Buffer absorbing the non-critical topic-totals dependence,
   against the data-parallel baseline.

   Run with:  dune exec examples/topic_modeling.exe *)

open Orion_baselines
open Orion_apps

let () =
  let corpus =
    Orion_data.Corpus.generate ~num_docs:300 ~vocab_size:150 ~avg_doc_len:30
      ~num_topics_truth:8 ()
  in
  Printf.printf "corpus: %d docs, vocab %d, %d tokens\n%!" corpus.num_docs
    corpus.vocab_size corpus.num_tokens;

  let epochs = 10 in
  let cfg =
    {
      Orion_lda.default_config with
      num_machines = 4;
      workers_per_machine = 2;
      num_topics = 8;
      epochs;
    }
  in
  let serial = Orion_lda.train_serial ~config:cfg ~corpus () in
  let orion = Orion_lda.train ~config:cfg ~corpus () in
  let bosen, _ =
    Bosen_lda.train
      ~config:
        {
          Bosen_lda.default_config with
          num_machines = 4;
          workers_per_machine = 2;
          num_topics = 8;
          epochs;
        }
      ~corpus ()
  in

  print_endline "\n=== What Orion derived ===";
  print_string (Orion.Plan.explain_to_string orion.Orion_lda.plan);

  print_endline "\n=== Convergence (joint log-likelihood per pass; higher is better) ===";
  let show t =
    Printf.printf "%-12s" t.Trajectory.system;
    List.iter
      (fun p -> Printf.printf " %11.0f" p.Trajectory.metric)
      t.Trajectory.points;
    print_newline ()
  in
  show serial;
  show orion.Orion_lda.trajectory;
  show bosen;

  (* peek at the learned topics: top words of two topics *)
  let model = orion.Orion_lda.model in
  print_endline "\n=== Top words per topic (indices) ===";
  for z = 0 to min 3 (cfg.num_topics - 1) do
    let scored =
      List.init corpus.vocab_size (fun w -> (model.Lda.word_topic.(w).(z), w))
    in
    let top =
      List.sort (fun (a, _) (b, _) -> compare b a) scored
      |> List.filteri (fun i _ -> i < 6)
    in
    Printf.printf "topic %d:" z;
    List.iter (fun (c, w) -> Printf.printf " w%d(%.0f)" w c) top;
    print_newline ()
  done
