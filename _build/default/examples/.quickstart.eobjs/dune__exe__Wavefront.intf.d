examples/wavefront.mli:
