examples/quickstart.ml: List Orion Orion_data Printf
