examples/topic_modeling.mli:
