examples/sparse_logistic_regression.ml: Array List Orion Orion_baselines Orion_data Printf Slr_runner Trajectory
