examples/gradient_boosted_trees.mli:
