examples/topic_modeling.ml: Array Bosen_lda Lda List Orion Orion_apps Orion_baselines Orion_data Orion_lda Printf Trajectory
