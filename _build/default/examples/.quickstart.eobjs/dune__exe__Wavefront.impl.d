examples/wavefront.ml: List Orion Orion_apps Printf Stencil
