examples/gradient_boosted_trees.ml: Array Gbt List Orion Orion_apps Printf
