examples/quickstart.mli:
