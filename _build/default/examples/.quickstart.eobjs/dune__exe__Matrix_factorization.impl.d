examples/matrix_factorization.ml: Bosen_mf List Orion Orion_baselines Orion_data Orion_mf Printf Tf_mf Trajectory
