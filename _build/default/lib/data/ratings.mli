(** Synthetic recommender-system ratings (the "netflix_like" proxy):
    a planted low-rank model with Zipf-skewed user/item popularity;
    ratings clipped to [1, 5]. *)

type t = {
  ratings : float Orion_dsm.Dist_array.t;  (** sparse users × items *)
  num_users : int;
  num_items : int;
  num_ratings : int;
  rank_truth : int;
}

val generate :
  ?seed:int ->
  num_users:int ->
  num_items:int ->
  num_ratings:int ->
  ?rank_truth:int ->
  ?noise:float ->
  ?user_skew:float ->
  ?item_skew:float ->
  unit ->
  t

(** The standard scaled-down instance used by the bench harness. *)
val netflix_like : ?scale:float -> unit -> t
