(** Synthetic text corpora for LDA (the "nytimes_like" and
    "clueweb_like" datasets).

    Documents are drawn from a planted topic model: each document mixes
    a few topics; each topic has a Zipf-ish word distribution over a
    topic-specific region of the vocabulary.  Token occurrences are
    emitted as a sparse (doc × word) -> count DistArray, matching the
    bag-of-words representation Orion's LDA iterates over. *)

open Orion_dsm

type t = {
  tokens : float Dist_array.t;
      (** sparse docs × vocab; value = occurrence count of the word in
          the document *)
  num_docs : int;
  vocab_size : int;
  num_tokens : int;  (** total token occurrences *)
  num_topics_truth : int;
}

let generate ?(seed = 4321) ~num_docs ~vocab_size ~avg_doc_len
    ?(num_topics_truth = 20) ?(word_skew = 1.05) () =
  let rng = Rng.create seed in
  let word_zipf = Rng.zipf_create ~n:vocab_size ~s:word_skew in
  let word_perm = Rng.permutation rng vocab_size in
  (* each topic prefers a contiguous region of the permuted vocabulary *)
  let topic_offset t = t * vocab_size / num_topics_truth in
  let counts = Hashtbl.create (num_docs * avg_doc_len) in
  let total = ref 0 in
  for d = 0 to num_docs - 1 do
    (* 1-3 topics per document *)
    let k = 1 + Rng.int rng 3 in
    let topics = Array.init k (fun _ -> Rng.int rng num_topics_truth) in
    let len = max 4 (avg_doc_len / 2) + Rng.int rng avg_doc_len in
    for _ = 1 to len do
      let topic = topics.(Rng.int rng k) in
      let w =
        word_perm.((Rng.zipf_draw rng word_zipf + topic_offset topic)
                   mod vocab_size)
      in
      let key = (d * vocab_size) + w in
      Hashtbl.replace counts key
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts key));
      incr total
    done
  done;
  let entries =
    Hashtbl.fold
      (fun key c acc ->
        ([| key / vocab_size; key mod vocab_size |], float_of_int c) :: acc)
      counts []
  in
  let tokens =
    Dist_array.of_entries ~name:"tokens" ~dims:[| num_docs; vocab_size |]
      ~default:0.0 entries
  in
  {
    tokens;
    num_docs;
    vocab_size;
    num_tokens = !total;
    num_topics_truth;
  }

(** ~300K-doc NYTimes proxy, scaled down (the real corpus has ~3x
    more documents than vocabulary entries). *)
let nytimes_like ?(scale = 1.0) () =
  generate
    ~num_docs:(max 64 (int_of_float (900.0 *. scale)))
    ~vocab_size:(max 32 (int_of_float (300.0 *. scale)))
    ~avg_doc_len:40 ()

(** ~25M-doc ClueWeb subset proxy: more documents, bigger vocabulary. *)
let clueweb_like ?(scale = 1.0) () =
  generate ~seed:9999
    ~num_docs:(max 128 (int_of_float (2000.0 *. scale)))
    ~vocab_size:(max 64 (int_of_float (500.0 *. scale)))
    ~avg_doc_len:50 ()
