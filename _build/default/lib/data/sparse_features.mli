(** Synthetic high-dimensional sparse classification data (the
    "kdd_like" proxy for SLR): a planted sparse weight vector, Zipf
    feature popularity, labels from the noisy margin sign. *)

type sample = {
  label : float;  (** 0.0 or 1.0 *)
  features : int array;  (** active feature indices, ascending *)
  values : float array;
}

type t = {
  samples : sample Orion_dsm.Dist_array.t;  (** 1-D, one entry per sample *)
  num_samples : int;
  num_features : int;
  avg_nnz : float;
}

val generate :
  ?seed:int ->
  num_samples:int ->
  num_features:int ->
  nnz_per_sample:int ->
  ?feature_skew:float ->
  ?noise:float ->
  unit ->
  t

val kdd_like : ?scale:float -> unit -> t

(** Interpreter value [(label, 1-based indices, values)] for the SLR
    OrionScript program. *)
val sample_to_value : sample -> Orion_lang.Value.t
