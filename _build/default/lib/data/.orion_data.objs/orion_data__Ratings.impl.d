lib/data/ratings.ml: Array Dist_array Float Hashtbl Orion_dsm Rng
