lib/data/rng.ml: Array Float Fun Int64
