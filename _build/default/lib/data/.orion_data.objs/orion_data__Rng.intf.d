lib/data/rng.mli:
