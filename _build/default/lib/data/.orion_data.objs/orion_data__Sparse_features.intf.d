lib/data/sparse_features.mli: Orion_dsm Orion_lang
