lib/data/corpus.ml: Array Dist_array Hashtbl Option Orion_dsm Rng
