lib/data/sparse_features.ml: Array Dist_array Hashtbl List Orion_dsm Orion_lang Rng
