lib/data/corpus.mli: Orion_dsm
