lib/data/ratings.mli: Orion_dsm
