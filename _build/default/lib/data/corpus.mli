(** Synthetic text corpora for LDA (the "nytimes_like" and
    "clueweb_like" proxies): documents drawn from a planted topic model
    with Zipf-ish word distributions. *)

type t = {
  tokens : float Orion_dsm.Dist_array.t;
      (** sparse docs × vocab; value = occurrence count *)
  num_docs : int;
  vocab_size : int;
  num_tokens : int;
  num_topics_truth : int;
}

val generate :
  ?seed:int ->
  num_docs:int ->
  vocab_size:int ->
  avg_doc_len:int ->
  ?num_topics_truth:int ->
  ?word_skew:float ->
  unit ->
  t

val nytimes_like : ?scale:float -> unit -> t
val clueweb_like : ?scale:float -> unit -> t
