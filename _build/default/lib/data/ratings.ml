(** Synthetic recommender-system ratings (the "netflix_like" dataset).

    The paper's Netflix dataset has ~100M ratings over ~480K users ×
    ~17K movies with strongly skewed popularity.  We plant a low-rank
    model: V = Wᵀ H + noise, sample nonzero positions with Zipf-skewed
    row and column popularity, and emit ratings clipped to [1, 5].
    Because a ground-truth low-rank structure exists, SGD MF converges
    and training-loss comparisons are meaningful. *)

open Orion_dsm

type t = {
  ratings : float Dist_array.t;  (** sparse users × items *)
  num_users : int;
  num_items : int;
  num_ratings : int;
  rank_truth : int;
}

let generate ?(seed = 1234) ~num_users ~num_items ~num_ratings
    ?(rank_truth = 8) ?(noise = 0.1) ?(user_skew = 0.8) ?(item_skew = 1.0) ()
    =
  let rng = Rng.create seed in
  let wt =
    Array.init rank_truth (fun _ ->
        Array.init num_users (fun _ -> Rng.gaussian rng /. sqrt (float_of_int rank_truth)))
  in
  let ht =
    Array.init rank_truth (fun _ ->
        Array.init num_items (fun _ -> Rng.gaussian rng /. sqrt (float_of_int rank_truth)))
  in
  let user_zipf = Rng.zipf_create ~n:num_users ~s:user_skew in
  let item_zipf = Rng.zipf_create ~n:num_items ~s:item_skew in
  (* scatter popularity so hot users/items are not adjacent indices *)
  let user_perm = Rng.permutation rng num_users in
  let item_perm = Rng.permutation rng num_items in
  let seen = Hashtbl.create (num_ratings * 2) in
  let entries = ref [] in
  let added = ref 0 in
  let attempts = ref 0 in
  while !added < num_ratings && !attempts < num_ratings * 50 do
    incr attempts;
    let u = user_perm.(Rng.zipf_draw rng user_zipf) in
    let i = item_perm.(Rng.zipf_draw rng item_zipf) in
    if not (Hashtbl.mem seen ((u * num_items) + i)) then begin
      Hashtbl.add seen ((u * num_items) + i) ();
      let v = ref 0.0 in
      for k = 0 to rank_truth - 1 do
        v := !v +. (wt.(k).(u) *. ht.(k).(i))
      done;
      let rating =
        Float.min 5.0
          (Float.max 1.0 (3.0 +. !v +. (noise *. Rng.gaussian rng)))
      in
      entries := ([| u; i |], rating) :: !entries;
      incr added
    end
  done;
  let ratings =
    Dist_array.of_entries ~name:"ratings" ~dims:[| num_users; num_items |]
      ~default:0.0 !entries
  in
  {
    ratings;
    num_users;
    num_items;
    num_ratings = Dist_array.count ratings;
    rank_truth;
  }

(** The standard scaled-down instance used across the benchmark
    harness (documented in EXPERIMENTS.md). *)
let netflix_like ?(scale = 1.0) () =
  let s = scale in
  generate
    ~num_users:(max 32 (int_of_float (600.0 *. s)))
    ~num_items:(max 32 (int_of_float (400.0 *. s)))
    ~num_ratings:(max 512 (int_of_float (40_000.0 *. s)))
    ()
