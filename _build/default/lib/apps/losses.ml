(** Shared numeric helpers: losses and special functions. *)

let sigmoid x =
  if x >= 0.0 then 1.0 /. (1.0 +. exp (-.x))
  else
    let e = exp x in
    e /. (1.0 +. e)

(** Numerically-stable binary cross-entropy for label in {0, 1}. *)
let log_loss ~label ~p =
  let p = Float.min (1.0 -. 1e-12) (Float.max 1e-12 p) in
  -.((label *. log p) +. ((1.0 -. label) *. log (1.0 -. p)))

(** Log-gamma via the Lanczos approximation (g = 7, n = 9); accurate to
    ~1e-13 for x > 0, which is ample for LDA log-likelihoods. *)
let lgamma =
  let coeffs =
    [|
      0.99999999999980993;
      676.5203681218851;
      -1259.1392167224028;
      771.32342877765313;
      -176.61502916214059;
      12.507343278686905;
      -0.13857109526572012;
      9.9843695780195716e-6;
      1.5056327351493116e-7;
    |]
  in
  let rec lg x =
    if x < 0.5 then
      (* reflection formula *)
      log (Float.pi /. sin (Float.pi *. x)) -. lg (1.0 -. x)
    else
      let x = x -. 1.0 in
      let a = ref coeffs.(0) in
      let t = x +. 7.5 in
      for i = 1 to 8 do
        a := !a +. (coeffs.(i) /. (x +. float_of_int i))
      done;
      (0.5 *. log (2.0 *. Float.pi))
      +. ((x +. 0.5) *. log t)
      -. t
      +. log !a
  in
  lg

(** Nonzero squared loss for matrix factorization:
    L = Σ_{(i,j) ∈ Z} (V_ij − Σ_k W_ki H_kj)². *)
let mf_loss ~(w : float array array) ~(h : float array array) ratings =
  let rank = Array.length w in
  Orion_dsm.Dist_array.fold
    (fun acc key v ->
      let pred = ref 0.0 in
      for k = 0 to rank - 1 do
        pred := !pred +. (w.(k).(key.(0)) *. h.(k).(key.(1)))
      done;
      acc +. ((v -. !pred) ** 2.0))
    0.0 ratings
