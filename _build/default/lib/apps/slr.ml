(** Sparse logistic regression trained with SGD (Table 2 rows "SLR"
    and "SLR AdaRev"; the bulk-prefetching experiment of §6.3).

    Each sample reads and updates only the weights of its nonzero
    features — subscripts that depend on runtime values, so static
    dependence capture fails and the program uses a DistArray Buffer
    for the weight updates: Orion parallelizes it 1D (data
    parallelism).  The weight DistArray is server-hosted; Orion's
    synthesized prefetch function gathers each sample's weight indices
    in bulk (reproduced in the bench harness). *)

open Orion_dsm
open Orion_data

type model = { num_features : int; w : float array }

let init_model ~num_features () = { num_features; w = Array.make num_features 0.0 }

(** OrionScript source: weights are read by runtime-dependent
    subscripts and updated through the buffer [w_buf]. *)
let script =
  {|
step_size = 0.1
for iter = 1:num_iterations
  @parallel_for for (key, sample) in samples
    label = sample[1]
    idx = sample[2]
    vals = sample[3]
    margin = 0.0
    for k = 1:length(idx)
      margin += w[int(idx[k])] * vals[k]
    end
    p = sigmoid(margin)
    g = p - label
    for k = 1:length(idx)
      w_buf[int(idx[k])] += 0.0 - step_size * g * vals[k]
    end
  end
end
|}

let register_arrays session ~(data : Sparse_features.t) model =
  Orion.register_iterable session data.Sparse_features.samples
    ~to_value:Sparse_features.sample_to_value;
  Orion.register_meta session ~name:"w" ~dims:[| model.num_features |] ();
  Orion.register_meta session ~name:"w_buf"
    ~dims:[| model.num_features |]
    ~buffered:true ()

let predict model (s : Sparse_features.sample) =
  let margin = ref 0.0 in
  Array.iteri
    (fun k f -> margin := !margin +. (model.w.(f) *. s.values.(k)))
    s.features;
  Losses.sigmoid !margin

(** Mean logistic loss over the dataset. *)
let loss model (samples : Sparse_features.sample Dist_array.t) =
  let total, n =
    Dist_array.fold
      (fun (acc, n) _ (s : Sparse_features.sample) ->
        (acc +. Losses.log_loss ~label:s.label ~p:(predict model s), n + 1))
      (0.0, 0) samples
  in
  total /. float_of_int (max n 1)

(** One SGD step on a sample: weights are read through [read]; the
    per-coordinate raw gradient [g·x_f] is pushed through [update]
    (callers scale it — plain SGD by a step size, AdaRevision through
    its adaptive rule — so the same body serves local weights, a
    parameter server, or a buffered path). *)
let step ~read ~update (s : Sparse_features.sample) =
  let margin = ref 0.0 in
  Array.iteri
    (fun k f -> margin := !margin +. (read f *. s.values.(k)))
    s.features;
  let p = Losses.sigmoid !margin in
  let g = p -. s.label in
  Array.iteri (fun k f -> update f (g *. s.values.(k))) s.features

(** Local (serial) loop body. *)
let body model ~step_size ~worker:_ ~key:_ ~value:sample =
  step
    ~read:(fun f -> model.w.(f))
    ~update:(fun f grad -> model.w.(f) <- model.w.(f) -. (step_size *. grad))
    sample

let train_serial model ~(data : Sparse_features.t) ~step_size ~epochs =
  let traj = Array.make (epochs + 1) 0.0 in
  traj.(0) <- loss model data.samples;
  for e = 1 to epochs do
    Dist_array.iter
      (fun key s -> body model ~step_size ~worker:0 ~key ~value:s)
      data.samples;
    traj.(e) <- loss model data.samples
  done;
  traj
