(** A skewed stencil recurrence — the paper's "2D parallelization w/
    unimodular transformation" case (§3.2 case 3, §4.3).

    Each grid cell depends on its west neighbour and its north-east
    neighbour:

      S[i, j] = a·S[i-1, j+1] + b·S[i, j-1] + c·V[i, j]

    The dependence vectors are (1, -1) and (0, 1): no single dimension
    is dependence-free and no dimension pair satisfies the 2D
    criterion, so Orion must skew the iteration space (wavefront) to
    parallelize.  This is the classic pattern of dynamic-programming
    sweeps (sequence alignment, anisotropic smoothing).

    The loop is [ordered]: the recurrence's lexicographic semantics
    matter, and the transformed schedule preserves them exactly — a
    fact the test suite checks bit-for-bit against serial execution. *)

open Orion_dsm

type model = {
  rows : int;
  cols : int;
  s : float array;  (** the recurrence state, row-major *)
  a : float;
  b : float;
  c : float;
}

let init_model ~rows ~cols ?(a = 0.45) ?(b = 0.35) ?(c = 0.2) () =
  { rows; cols; s = Array.make (rows * cols) 0.0; a; b; c }

(** The serial OrionScript program (edge cells fall back to the input
    value — the guards keep all subscripts in bounds). *)
let script =
  {|
@parallel_for ordered for (key, v) in grid
  acc = c_in * v
  if key[1] > 1 && key[2] < cols
    acc += a_nw * S[key[1] - 1, key[2] + 1]
  end
  if key[2] > 1
    acc += b_w * S[key[1], key[2] - 1]
  end
  S[key[1], key[2]] = acc
end
|}

(** A complete driver program (constants included) for the interpreted
    path. *)
let driver_script ~cols =
  Printf.sprintf "a_nw = 0.45\nb_w = 0.35\nc_in = 0.2\ncols = %d\n%s" cols
    script

let register_arrays session ~(grid : float Dist_array.t) model =
  Orion.register session grid;
  Orion.register_meta session ~name:"S" ~dims:[| model.rows; model.cols |] ()

(** The generated loop body. *)
let body model ~worker:_ ~key ~value =
  let i = key.(0) and j = key.(1) in
  let idx r c = (r * model.cols) + c in
  let acc = ref (model.c *. value) in
  if i > 0 && j < model.cols - 1 then
    acc := !acc +. (model.a *. model.s.(idx (i - 1) (j + 1)));
  if j > 0 then acc := !acc +. (model.b *. model.s.(idx i (j - 1)));
  model.s.(idx i j) <- !acc

(** Serial reference in lexicographic order. *)
let run_serial model (grid : float Dist_array.t) =
  Dist_array.iter (fun key v -> body model ~worker:0 ~key ~value:v) grid

(** A dense input grid with a deterministic pattern. *)
let make_grid ~rows ~cols =
  Dist_array.init_dense ~name:"grid" ~dims:[| rows; cols |] ~f:(fun key ->
      let i = key.(0) and j = key.(1) in
      sin (float_of_int ((i * 31) + j) *. 0.37)
      +. (0.01 *. float_of_int (i + j)))

(** Mean absolute state (a cheap fingerprint for benchmarks). *)
let fingerprint model =
  Array.fold_left (fun acc v -> acc +. abs_float v) 0.0 model.s
  /. float_of_int (Array.length model.s)
