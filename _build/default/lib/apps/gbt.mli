(** Gradient boosted trees (Table 2 "GBT"): second-order boosting with
    histogram split finding; the per-feature split search is the
    1D-parallel loop. *)

type dataset = {
  features : float array array;  (** samples × feature values *)
  labels : float array;  (** 0/1 *)
}

type node =
  | Leaf of float
  | Split of { feature : int; threshold : float; left : node; right : node }

type model = {
  base_score : float;
  learning_rate : float;
  mutable trees : node list;  (** newest first *)
}

type params = {
  num_trees : int;
  max_depth : int;
  learning_rate : float;
  min_child_weight : float;
  lambda : float;
  num_bins : int;
}

val default_params : params

(** The OrionScript split-finding loop (what the analyzer sees). *)
val script : string

val eval_tree : node -> float array -> float
val raw_score : model -> float array -> float
val predict : model -> float array -> float
val log_loss : model -> dataset -> float
val accuracy : model -> dataset -> float

type split_candidate = { gain : float; threshold : float }

val feature_edges : dataset -> num_bins:int -> float array array
val bin_of : float array -> float -> int

(** Best split of [members] on one feature — the 1D loop's body. *)
val best_split_for_feature :
  dataset ->
  edges:float array array ->
  grads:float array ->
  hess:float array ->
  members:int list ->
  f:int ->
  lambda:float ->
  min_child_weight:float ->
  split_candidate option

(** Grow one tree; [parallel_feature_scan] maps the per-feature search
    (the Orion-parallelized loop; defaults to a serial scan). *)
val grow_tree :
  ?parallel_feature_scan:
    (int list -> (int -> (int * split_candidate) option) ->
    (int * split_candidate) option list) ->
  dataset ->
  params:params ->
  edges:float array array ->
  grads:float array ->
  hess:float array ->
  node

(** Train a boosted ensemble; returns the model and the per-round
    training log-loss trajectory. *)
val train :
  ?params:params ->
  ?parallel_feature_scan:
    (int list -> (int -> (int * split_candidate) option) ->
    (int * split_candidate) option list) ->
  dataset ->
  model * float array

(** A planted nonlinear concept (trees beat linear models on it). *)
val synthetic : ?seed:int -> num_samples:int -> num_features:int -> unit -> dataset
