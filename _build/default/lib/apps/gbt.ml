(** Gradient boosted trees (Table 2 row "GBT").

    Binary classification with logistic loss, XGBoost-style second-
    order boosting and histogram-based split finding.  The expensive
    inner loop — scanning every feature for the best split of a node —
    is embarrassingly parallel across features, which is exactly the
    1D parallelization Orion derives for it (each iteration writes
    only its own feature's split statistics). *)

type dataset = {
  features : float array array;  (** samples × feature values *)
  labels : float array;  (** 0/1 *)
}

type node =
  | Leaf of float
  | Split of { feature : int; threshold : float; left : node; right : node }

type model = {
  base_score : float;  (** prior log-odds *)
  learning_rate : float;
  mutable trees : node list;  (** newest first *)
}

type params = {
  num_trees : int;
  max_depth : int;
  learning_rate : float;
  min_child_weight : float;
  lambda : float;  (** L2 regularization on leaf weights *)
  num_bins : int;
}

let default_params =
  {
    num_trees = 20;
    max_depth = 4;
    learning_rate = 0.2;
    min_child_weight = 1.0;
    lambda = 1.0;
    num_bins = 32;
  }

(** OrionScript source of the split-finding loop (the analyzer sees a
    1-D iteration space over features with per-feature writes). *)
let script =
  {|
@parallel_for for (key, unused) in feature_index
  f = key[1]
  best = find_best_split(f)
  split_gain[key[1]] = best
end
|}

(* ------------------------------------------------------------------ *)
(* Prediction                                                          *)
(* ------------------------------------------------------------------ *)

let rec eval_tree node x =
  match node with
  | Leaf w -> w
  | Split { feature; threshold; left; right } ->
      if x.(feature) <= threshold then eval_tree left x else eval_tree right x

let raw_score (model : model) x =
  List.fold_left
    (fun acc t -> acc +. (model.learning_rate *. eval_tree t x))
    model.base_score model.trees

let predict model x = Losses.sigmoid (raw_score model x)

let log_loss model (data : dataset) =
  let n = Array.length data.labels in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc :=
      !acc
      +. Losses.log_loss ~label:data.labels.(i) ~p:(predict model data.features.(i))
  done;
  !acc /. float_of_int (max n 1)

let accuracy model (data : dataset) =
  let n = Array.length data.labels in
  let correct = ref 0 in
  for i = 0 to n - 1 do
    let p = predict model data.features.(i) in
    if (p >= 0.5 && data.labels.(i) = 1.0) || (p < 0.5 && data.labels.(i) = 0.0)
    then incr correct
  done;
  float_of_int !correct /. float_of_int (max n 1)

(* ------------------------------------------------------------------ *)
(* Histogram split finding                                             *)
(* ------------------------------------------------------------------ *)

type split_candidate = { gain : float; threshold : float }

(* bin edges per feature, from the global min/max *)
let feature_edges (data : dataset) ~num_bins =
  let d = Array.length data.features.(0) in
  Array.init d (fun f ->
      let lo = ref infinity and hi = ref neg_infinity in
      Array.iter
        (fun x ->
          lo := Float.min !lo x.(f);
          hi := Float.max !hi x.(f))
        data.features;
      let lo = !lo and hi = Float.max (!lo +. 1e-9) !hi in
      Array.init (num_bins + 1) (fun b ->
          lo +. ((hi -. lo) *. float_of_int b /. float_of_int num_bins)))

let bin_of edges x =
  let n = Array.length edges - 1 in
  let lo = edges.(0) and hi = edges.(n) in
  let b =
    int_of_float ((x -. lo) /. (hi -. lo) *. float_of_int n)
  in
  max 0 (min (n - 1) b)

(** Best split of [members] on feature [f]: accumulate gradient and
    hessian histograms, then scan bin boundaries.  This is the body of
    the 1D-parallel loop (one iteration per feature). *)
let best_split_for_feature (data : dataset) ~edges ~grads ~hess ~members ~f
    ~lambda ~min_child_weight : split_candidate option =
  let e = edges.(f) in
  let bins = Array.length e - 1 in
  let gh = Array.make bins 0.0 and hh = Array.make bins 0.0 in
  let g_total = ref 0.0 and h_total = ref 0.0 in
  List.iter
    (fun i ->
      let b = bin_of e data.features.(i).(f) in
      gh.(b) <- gh.(b) +. grads.(i);
      hh.(b) <- hh.(b) +. hess.(i);
      g_total := !g_total +. grads.(i);
      h_total := !h_total +. hess.(i))
    members;
  let score g h = g *. g /. (h +. lambda) in
  let parent = score !g_total !h_total in
  let best = ref None in
  let gl = ref 0.0 and hl = ref 0.0 in
  for b = 0 to bins - 2 do
    gl := !gl +. gh.(b);
    hl := !hl +. hh.(b);
    let gr = !g_total -. !gl and hr = !h_total -. !hl in
    if !hl >= min_child_weight && hr >= min_child_weight then begin
      let gain = score !gl !hl +. score gr hr -. parent in
      match !best with
      | Some { gain = g0; _ } when g0 >= gain -> ()
      | _ -> if gain > 1e-9 then best := Some { gain; threshold = e.(b + 1) }
    end
  done;
  !best

(* ------------------------------------------------------------------ *)
(* Tree construction                                                   *)
(* ------------------------------------------------------------------ *)

(** Grow one tree on (grads, hess).  [parallel_feature_scan] maps the
    per-feature split search — the Orion-parallelized loop; the default
    is the serial scan. *)
let grow_tree ?(parallel_feature_scan = fun fs find -> List.map find fs)
    (data : dataset) ~params ~edges ~grads ~hess =
  let d = Array.length data.features.(0) in
  let all_features = List.init d Fun.id in
  let leaf_weight members =
    let g = List.fold_left (fun a i -> a +. grads.(i)) 0.0 members in
    let h = List.fold_left (fun a i -> a +. hess.(i)) 0.0 members in
    -.g /. (h +. params.lambda)
  in
  let rec build members depth =
    if depth >= params.max_depth || List.length members < 2 then
      Leaf (leaf_weight members)
    else
      let candidates =
        parallel_feature_scan all_features (fun f ->
            Option.map
              (fun c -> (f, c))
              (best_split_for_feature data ~edges ~grads ~hess ~members ~f
                 ~lambda:params.lambda
                 ~min_child_weight:params.min_child_weight))
      in
      let best =
        List.fold_left
          (fun acc cand ->
            match (acc, cand) with
            | None, c -> c
            | Some _, None -> acc
            | Some (_, b), Some (_, c) -> if c.gain > b.gain then cand else acc)
          None candidates
      in
      match best with
      | None -> Leaf (leaf_weight members)
      | Some (f, { threshold; _ }) ->
          let left, right =
            List.partition (fun i -> data.features.(i).(f) <= threshold) members
          in
          if left = [] || right = [] then Leaf (leaf_weight members)
          else
            Split
              {
                feature = f;
                threshold;
                left = build left (depth + 1);
                right = build right (depth + 1);
              }
  in
  build (List.init (Array.length data.labels) Fun.id) 0

(** Train a boosted ensemble; returns the model and the per-round
    training log-loss trajectory. *)
let train ?(params = default_params) ?parallel_feature_scan (data : dataset) =
  let n = Array.length data.labels in
  let pos = Array.fold_left ( +. ) 0.0 data.labels in
  let prior = Float.max 1e-6 (Float.min (1.0 -. 1e-6) (pos /. float_of_int n)) in
  let model =
    {
      base_score = log (prior /. (1.0 -. prior));
      learning_rate = params.learning_rate;
      trees = [];
    }
  in
  let edges = feature_edges data ~num_bins:params.num_bins in
  let scores = Array.make n model.base_score in
  let traj = Array.make (params.num_trees + 1) 0.0 in
  traj.(0) <- log_loss model data;
  for round = 1 to params.num_trees do
    let grads = Array.make n 0.0 and hess = Array.make n 0.0 in
    for i = 0 to n - 1 do
      let p = Losses.sigmoid scores.(i) in
      grads.(i) <- p -. data.labels.(i);
      hess.(i) <- Float.max 1e-9 (p *. (1.0 -. p))
    done;
    let tree = grow_tree ?parallel_feature_scan data ~params ~edges ~grads ~hess in
    model.trees <- tree :: model.trees;
    for i = 0 to n - 1 do
      scores.(i) <-
        scores.(i) +. (params.learning_rate *. eval_tree tree data.features.(i))
    done;
    traj.(round) <- log_loss model data
  done;
  (model, traj)

(* ------------------------------------------------------------------ *)
(* Synthetic data                                                      *)
(* ------------------------------------------------------------------ *)

(** Nonlinear planted concept: labels depend on feature interactions,
    so trees beat linear models on it. *)
let synthetic ?(seed = 31) ~num_samples ~num_features () : dataset =
  let rng = Orion_data.Rng.create seed in
  let features =
    Array.init num_samples (fun _ ->
        Array.init num_features (fun _ -> Orion_data.Rng.float rng))
  in
  let labels =
    Array.map
      (fun x ->
        let v =
          (if x.(0) > 0.5 then 1.0 else -1.0)
          *. (if x.(1 mod num_features) > 0.3 then 1.2 else -0.8)
          +. (0.5 *. x.(2 mod num_features))
          +. (0.1 *. (Orion_data.Rng.float rng -. 0.5))
        in
        if v > 0.1 then 1.0 else 0.0)
      features
  in
  { features; labels }
