(** Topic modeling with LDA by collapsed Gibbs sampling (Table 2
    "LDA").  Orion parallelizes the sampling loop 2D-unordered; the
    topic-totals vector goes through a DistArray Buffer (the
    "non-critical dependence" the paper permits violating). *)

type model = {
  num_topics : int;
  num_docs : int;
  vocab_size : int;
  alpha : float;
  beta : float;
  doc_topic : float array array;  (** docs × topics *)
  word_topic : float array array;  (** vocab × topics *)
  totals : float array;  (** per-topic token totals *)
  assignments : (int, int array) Hashtbl.t;
  rng : Orion_data.Rng.t;
  mutable doc_lengths : float array;
}

(** Random initial topic assignment for every token occurrence. *)
val init_model :
  ?seed:int -> num_topics:int -> corpus:Orion_data.Corpus.t -> unit -> model

(** The OrionScript sampling loop (what the analyzer sees). *)
val script : string

val register_arrays :
  Orion.session -> tokens:float Orion_dsm.Dist_array.t -> model -> unit

(** Gibbs-sample a token's occurrences against the given views of the
    word-topic row and (possibly worker-local) topic totals; [on_update]
    reports each count delta (e.g. into a DistArray Buffer). *)
val body_with_views :
  model ->
  wt:float array ->
  totals:float array ->
  on_update:(word:int -> topic:int -> delta:float -> unit) ->
  key:int array ->
  unit

(** Shared-state loop body (serial / serializable schedules). *)
val body : model -> worker:int -> key:int array -> value:float -> unit

(** Joint log-likelihood log p(w, z) — higher is better. *)
val log_likelihood : model -> float

(** Serial Gibbs sampling; returns the log-likelihood trajectory. *)
val train_serial :
  model -> tokens:float Orion_dsm.Dist_array.t -> epochs:int -> float array

val flops_per_token : int -> float
