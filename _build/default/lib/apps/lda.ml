(** Topic modeling with Latent Dirichlet Allocation, trained by
    collapsed Gibbs sampling (Table 2 row "LDA"; evaluated on the
    NYTimes and ClueWeb proxies).

    The iteration space is the sparse (doc × word) token-count matrix.
    Sampling a token touches its document's topic counts (keyed by the
    doc dimension), its word's topic counts (keyed by the word
    dimension) and the global topic totals.  Orion parallelizes the
    loop 2D-unordered; the topic-totals vector is written through a
    DistArray Buffer — the "non-critical dependence" the paper permits
    violating (§6.3). *)

open Orion_dsm

type model = {
  num_topics : int;
  num_docs : int;
  vocab_size : int;
  alpha : float;  (** document-topic smoothing *)
  beta : float;  (** topic-word smoothing *)
  doc_topic : float array array;  (** docs × topics *)
  word_topic : float array array;  (** vocab × topics *)
  totals : float array;  (** per-topic token totals *)
  assignments : (int, int array) Hashtbl.t;
      (** (doc * vocab + word) -> topic of each occurrence *)
  rng : Orion_data.Rng.t;
  mutable doc_lengths : float array;
}

let init_model ?(seed = 11) ~num_topics ~corpus () =
  let open Orion_data.Corpus in
  let m =
    {
      num_topics;
      num_docs = corpus.num_docs;
      vocab_size = corpus.vocab_size;
      alpha = 50.0 /. float_of_int num_topics;
      beta = 0.01;
      doc_topic = Array.make_matrix corpus.num_docs num_topics 0.0;
      word_topic = Array.make_matrix corpus.vocab_size num_topics 0.0;
      totals = Array.make num_topics 0.0;
      assignments = Hashtbl.create (Dist_array.count corpus.tokens);
      rng = Orion_data.Rng.create seed;
      doc_lengths = Array.make corpus.num_docs 0.0;
    }
  in
  (* random initial topic assignment for every token occurrence *)
  Dist_array.iter
    (fun key count ->
      let d = key.(0) and w = key.(1) in
      let c = int_of_float count in
      let topics =
        Array.init c (fun _ -> Orion_data.Rng.int m.rng num_topics)
      in
      Array.iter
        (fun z ->
          m.doc_topic.(d).(z) <- m.doc_topic.(d).(z) +. 1.0;
          m.word_topic.(w).(z) <- m.word_topic.(w).(z) +. 1.0;
          m.totals.(z) <- m.totals.(z) +. 1.0;
          m.doc_lengths.(d) <- m.doc_lengths.(d) +. 1.0)
        topics;
      Hashtbl.replace m.assignments ((d * m.vocab_size) + w) topics)
    corpus.tokens;
  m

(** The OrionScript source for the sampling loop (condensed: the real
    sampler body below is the generated code; this is what the
    analyzer sees — the access pattern is what matters). *)
let script =
  {|
for iter = 1:num_iterations
  @parallel_for for (key, cnt) in tokens
    old_t = int(token_topic[key[1], key[2]])
    doc_topic[key[1], old_t] = doc_topic[key[1], old_t] - cnt
    word_topic[key[2], old_t] = word_topic[key[2], old_t] - cnt
    new_t = sample_topic(key[1], key[2])
    doc_topic[key[1], new_t] = doc_topic[key[1], new_t] + cnt
    word_topic[key[2], new_t] = word_topic[key[2], new_t] + cnt
    totals_buf[old_t] += 0.0 - cnt
    totals_buf[new_t] += cnt
    token_topic[key[1], key[2]] = float(new_t)
  end
end
|}

let register_arrays session ~(tokens : float Dist_array.t) model =
  Orion.register session tokens;
  Orion.register_meta session ~name:"doc_topic"
    ~dims:[| model.num_docs; model.num_topics |]
    ();
  Orion.register_meta session ~name:"word_topic"
    ~dims:[| model.vocab_size; model.num_topics |]
    ();
  Orion.register_meta session ~name:"token_topic"
    ~dims:[| model.num_docs; model.vocab_size |]
    ();
  Orion.register_meta session ~name:"totals_buf"
    ~dims:[| model.num_topics |]
    ~buffered:true ()

(* Sample a topic for one token occurrence after decrementing its old
   assignment.  [dt], [wt] and [totals] are the doc's and word's count
   rows and the (possibly worker-local) topic totals. *)
let sample_topic m ~dt ~wt ~totals =
  let k = m.num_topics in
  let vbeta = float_of_int m.vocab_size *. m.beta in
  let cumulative = Array.make k 0.0 in
  let acc = ref 0.0 in
  for z = 0 to k - 1 do
    let p =
      (dt.(z) +. m.alpha) *. (wt.(z) +. m.beta) /. (totals.(z) +. vbeta)
    in
    acc := !acc +. p;
    cumulative.(z) <- !acc
  done;
  let u = Orion_data.Rng.float m.rng *. !acc in
  let lo = ref 0 and hi = ref (k - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cumulative.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo

(** Gibbs-sample every occurrence of token (doc, word) against the
    provided views of the word-topic matrix and topic totals.  The
    systems under comparison differ only in which views they pass
    (shared-fresh for serializable schedules, worker-local-stale for
    data parallelism) and how updates propagate. *)
let body_with_views m ~(wt : float array) ~(totals : float array)
    ~on_update ~key =
  let d = key.(0) and w = key.(1) in
  let topics = Hashtbl.find m.assignments ((d * m.vocab_size) + w) in
  let dt = m.doc_topic.(d) in
  Array.iteri
    (fun occ z_old ->
      dt.(z_old) <- dt.(z_old) -. 1.0;
      wt.(z_old) <- wt.(z_old) -. 1.0;
      totals.(z_old) <- totals.(z_old) -. 1.0;
      on_update ~word:w ~topic:z_old ~delta:(-1.0);
      let z_new = sample_topic m ~dt ~wt ~totals in
      dt.(z_new) <- dt.(z_new) +. 1.0;
      wt.(z_new) <- wt.(z_new) +. 1.0;
      totals.(z_new) <- totals.(z_new) +. 1.0;
      on_update ~word:w ~topic:z_new ~delta:1.0;
      topics.(occ) <- z_new)
    topics

(** The straightforward shared-state loop body (serial execution and
    serializable schedules). *)
let body m ~worker:_ ~key ~value:_ =
  body_with_views m ~wt:m.word_topic.(key.(1)) ~totals:m.totals
    ~on_update:(fun ~word:_ ~topic:_ ~delta:_ -> ())
    ~key

(** Joint log-likelihood log p(w, z) of the collapsed model — the
    convergence metric of Figs. 9c, 10c, 11b/c (higher is better). *)
let log_likelihood m =
  let k = float_of_int m.num_topics in
  let v = float_of_int m.vocab_size in
  let lg = Losses.lgamma in
  let word_part = ref 0.0 in
  for z = 0 to m.num_topics - 1 do
    let sum = ref 0.0 in
    for w = 0 to m.vocab_size - 1 do
      let c = m.word_topic.(w).(z) in
      if c > 0.0 then sum := !sum +. lg (c +. m.beta) -. lg m.beta
    done;
    word_part :=
      !word_part +. !sum +. lg (v *. m.beta) -. lg (m.totals.(z) +. (v *. m.beta))
  done;
  let doc_part = ref 0.0 in
  for d = 0 to m.num_docs - 1 do
    let sum = ref 0.0 in
    for z = 0 to m.num_topics - 1 do
      let c = m.doc_topic.(d).(z) in
      if c > 0.0 then sum := !sum +. lg (c +. m.alpha) -. lg m.alpha
    done;
    doc_part :=
      !doc_part +. !sum
      +. lg (k *. m.alpha)
      -. lg (m.doc_lengths.(d) +. (k *. m.alpha))
  done;
  !word_part +. !doc_part

(** Serial Gibbs sampling for [epochs] passes, returning the
    log-likelihood trajectory. *)
let train_serial m ~tokens ~epochs =
  let traj = Array.make (epochs + 1) 0.0 in
  traj.(0) <- log_likelihood m;
  for e = 1 to epochs do
    Dist_array.iter (fun key v -> body m ~worker:0 ~key ~value:v) tokens;
    traj.(e) <- log_likelihood m
  done;
  traj

(** Per-token flop estimate: one pass over the topics for sampling. *)
let flops_per_token num_topics = float_of_int (8 * num_topics)
