(** SGD matrix factorization (paper Alg. 1 / Fig. 5; Table 2 "SGD MF"
    and "SGD MF AdaRev").  W and H are stored flattened so adaptive
    optimizers can address them as parameter vectors. *)

type model = {
  rank : int;
  num_users : int;
  num_items : int;
  w : float array;  (** rank × users, index [k * num_users + i] *)
  h : float array;  (** rank × items, index [k * num_items + j] *)
}

val init_model :
  ?seed:int -> rank:int -> num_users:int -> num_items:int -> unit -> model

(** Nonzero squared loss over the training set. *)
val loss : model -> float Orion_dsm.Dist_array.t -> float

(** The serial OrionScript training program (what the analyzer sees). *)
val script : string

(** The same source with the [ordered] annotation (Table 3). *)
val script_src : ordered:bool -> string

(** Deep copy (per-worker caches in data-parallel baselines). *)
val copy_model : model -> model

(** Register the DistArray metadata [script] references. *)
val register_arrays :
  Orion.session -> ratings:float Orion_dsm.Dist_array.t -> model -> unit

(** One SGD step on rating (i, j) — the generated loop body. *)
val body :
  model -> step_size:float -> worker:int -> key:int array -> value:float -> unit

type adarev_model = { base : model; opt_w : Adarev.t; opt_h : Adarev.t }

val init_adarev :
  ?seed:int ->
  rank:int ->
  num_users:int ->
  num_items:int ->
  alpha:float ->
  unit ->
  adarev_model

(** Serializable (fresh-gradient) AdaRev step. *)
val body_adarev :
  adarev_model -> worker:int -> key:int array -> value:float -> unit

(** Serial training; returns the loss trajectory (index 0 = initial). *)
val train_serial :
  model ->
  ratings:float Orion_dsm.Dist_array.t ->
  step_size:float ->
  epochs:int ->
  float array

val flops_per_sample : int -> float
