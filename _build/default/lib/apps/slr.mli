(** Sparse logistic regression with SGD (Table 2 "SLR"): weight
    subscripts depend on each sample's features, so Orion parallelizes
    1D with a DistArray Buffer and serves the weights from server
    processes, bulk-prefetching their indices (§6.3). *)

type model = { num_features : int; w : float array }

val init_model : num_features:int -> unit -> model

(** The OrionScript training program (what the analyzer sees). *)
val script : string

val register_arrays :
  Orion.session -> data:Orion_data.Sparse_features.t -> model -> unit

val predict : model -> Orion_data.Sparse_features.sample -> float

(** Mean logistic loss over the dataset. *)
val loss :
  model -> Orion_data.Sparse_features.sample Orion_dsm.Dist_array.t -> float

(** One SGD step: weights read through [read]; per-coordinate raw
    gradients pushed through [update] (callers scale — plain SGD or
    AdaRevision). *)
val step :
  read:(int -> float) ->
  update:(int -> float -> unit) ->
  Orion_data.Sparse_features.sample ->
  unit

(** Local (serial) loop body. *)
val body :
  model ->
  step_size:float ->
  worker:int ->
  key:int array ->
  value:Orion_data.Sparse_features.sample ->
  unit

val train_serial :
  model ->
  data:Orion_data.Sparse_features.t ->
  step_size:float ->
  epochs:int ->
  float array
