(** A skewed stencil recurrence — the paper's "2D parallelization w/
    unimodular transformation" case (§3.2 case 3): dependence vectors
    {(1,-1), (0,1)} admit neither 1D nor 2D partitioning, forcing a
    wavefront (skewing) transformation. *)

type model = {
  rows : int;
  cols : int;
  s : float array;  (** the recurrence state, row-major *)
  a : float;
  b : float;
  c : float;
}

val init_model :
  rows:int -> cols:int -> ?a:float -> ?b:float -> ?c:float -> unit -> model

(** The ordered OrionScript program (edge guards keep subscripts in
    bounds). *)
val script : string

(** A complete driver (constants included) for the interpreted path. *)
val driver_script : cols:int -> string

val register_arrays :
  Orion.session -> grid:float Orion_dsm.Dist_array.t -> model -> unit

(** The generated loop body. *)
val body : model -> worker:int -> key:int array -> value:float -> unit

(** Serial reference in lexicographic order. *)
val run_serial : model -> float Orion_dsm.Dist_array.t -> unit

(** A dense input grid with a deterministic pattern. *)
val make_grid : rows:int -> cols:int -> float Orion_dsm.Dist_array.t

(** Mean absolute state (benchmark fingerprint). *)
val fingerprint : model -> float
