(** Shared numeric helpers: losses and special functions. *)

(** Numerically stable logistic function. *)
val sigmoid : float -> float

(** Binary cross-entropy for a label in {0, 1}, clipped away from 0/1. *)
val log_loss : label:float -> p:float -> float

(** Log-gamma (Lanczos, g = 7, n = 9; ~1e-13 accurate for x > 0). *)
val lgamma : float -> float

(** Nonzero squared loss for matrix factorization over rank × n factor
    matrices. *)
val mf_loss :
  w:float array array ->
  h:float array array ->
  float Orion_dsm.Dist_array.t ->
  float
