lib/apps/adarev.ml: Array
