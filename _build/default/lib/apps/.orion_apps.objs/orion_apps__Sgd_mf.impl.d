lib/apps/sgd_mf.ml: Adarev Array Dist_array Orion Orion_data Orion_dsm String
