lib/apps/gbt.ml: Array Float Fun List Losses Option Orion_data
