lib/apps/lda.mli: Hashtbl Orion Orion_data Orion_dsm
