lib/apps/sgd_mf.mli: Adarev Orion Orion_dsm
