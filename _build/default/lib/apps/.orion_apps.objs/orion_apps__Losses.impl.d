lib/apps/losses.ml: Array Float Orion_dsm
