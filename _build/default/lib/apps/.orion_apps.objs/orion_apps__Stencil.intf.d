lib/apps/stencil.mli: Orion Orion_dsm
