lib/apps/lda.ml: Array Dist_array Hashtbl Losses Orion Orion_data Orion_dsm
