lib/apps/gbt.mli:
