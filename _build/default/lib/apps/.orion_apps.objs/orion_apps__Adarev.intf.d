lib/apps/adarev.mli:
