lib/apps/slr.mli: Orion Orion_data Orion_dsm
