lib/apps/slr.ml: Array Dist_array Losses Orion Orion_data Orion_dsm Sparse_features
