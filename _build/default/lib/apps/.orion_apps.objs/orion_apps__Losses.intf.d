lib/apps/losses.mli: Orion_dsm
