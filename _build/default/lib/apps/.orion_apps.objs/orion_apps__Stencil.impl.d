lib/apps/stencil.ml: Array Dist_array Orion Orion_dsm Printf
