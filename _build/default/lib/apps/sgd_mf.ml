(** SGD matrix factorization (paper Alg. 1 / Fig. 5; Table 2 rows
    "SGD MF" and "SGD MF AdaRev").

    The model factorizes the sparse ratings matrix V (users × items) as
    Wᵀ H with W : rank × users and H : rank × items, both stored
    flattened (coordinate [k*n + i]) so adaptive optimizers can address
    them as plain parameter vectors.  The loop body is the paper's:
    read the two factor columns, compute the residual, apply gradient
    steps.  Orion parallelizes this loop 2D-unordered (stratified SGD).

    [script] is the OrionScript source submitted to the static
    analyzer — the native bodies below are what the JIT would have
    generated for it. *)

open Orion_dsm

type model = {
  rank : int;
  num_users : int;
  num_items : int;
  w : float array;  (** rank × users, index [k * num_users + i] *)
  h : float array;  (** rank × items, index [k * num_items + j] *)
}

let init_model ?(seed = 5) ~rank ~num_users ~num_items () =
  let rng = Orion_data.Rng.create seed in
  let scale = 1.0 /. sqrt (float_of_int rank) in
  {
    rank;
    num_users;
    num_items;
    w =
      Array.init (rank * num_users) (fun _ ->
          Orion_data.Rng.gaussian rng *. scale);
    h =
      Array.init (rank * num_items) (fun _ ->
          Orion_data.Rng.gaussian rng *. scale);
  }

(** Nonzero squared loss over the training set. *)
let loss model ratings =
  Dist_array.fold
    (fun acc key v ->
      let i = key.(0) and j = key.(1) in
      let pred = ref 0.0 in
      for k = 0 to model.rank - 1 do
        pred :=
          !pred
          +. (model.w.((k * model.num_users) + i)
             *. model.h.((k * model.num_items) + j))
      done;
      acc +. ((v -. !pred) ** 2.0))
    0.0 ratings

(** The serial training program (paper Fig. 5, condensed to the
    analyzable core). *)
let script =
  {|
step_size = 0.01
for iter = 1:num_iterations
  @parallel_for for (key, rv) in ratings
    W_row = W[:, key[1]]
    H_row = H[:, key[2]]
    pred = dot(W_row, H_row)
    diff = rv - pred
    W_grad = -2.0 * diff * H_row
    H_grad = -2.0 * diff * W_row
    W[:, key[1]] = W_row - W_grad * step_size
    H[:, key[2]] = H_row - H_grad * step_size
  end
end
|}

(** The same source with the [ordered] loop annotation (Table 3's
    ordered-vs-unordered comparison). *)
let script_src ~ordered =
  if not ordered then script
  else
    (* replace the first occurrence of the macro *)
    let sub = "@parallel_for" and by = "@parallel_for ordered" in
    let n = String.length script and m = String.length sub in
    let rec find i =
      if i + m > n then None
      else if String.sub script i m = sub then Some i
      else find (i + 1)
    in
    (match find 0 with
    | None -> script
    | Some i ->
        String.sub script 0 i ^ by ^ String.sub script (i + m) (n - i - m))

(** Deep copy (for per-worker caches in data-parallel baselines). *)
let copy_model m = { m with w = Array.copy m.w; h = Array.copy m.h }

(** Register the MF DistArray metadata (names/dims used by [script])
    in a session so the analyzer can plan the loop. *)
let register_arrays session ~(ratings : float Dist_array.t) model =
  Orion.register session ratings;
  Orion.register_meta session ~name:"W"
    ~dims:[| model.rank; model.num_users |]
    ();
  Orion.register_meta session ~name:"H"
    ~dims:[| model.rank; model.num_items |]
    ()

(** One SGD step on rating (i, j) — the generated loop body. *)
let body model ~step_size ~worker:_ ~key ~value =
  let i = key.(0) and j = key.(1) in
  let w = model.w and h = model.h in
  let nu = model.num_users and ni = model.num_items in
  let pred = ref 0.0 in
  for k = 0 to model.rank - 1 do
    pred := !pred +. (w.((k * nu) + i) *. h.((k * ni) + j))
  done;
  let diff = value -. !pred in
  let c = 2.0 *. step_size *. diff in
  for k = 0 to model.rank - 1 do
    let wi = (k * nu) + i and hj = (k * ni) + j in
    let wk = w.(wi) and hk = h.(hj) in
    w.(wi) <- wk +. (c *. hk);
    h.(hj) <- hk +. (c *. wk)
  done

(* ------------------------------------------------------------------ *)
(* AdaRev variant                                                      *)
(* ------------------------------------------------------------------ *)

type adarev_model = { base : model; opt_w : Adarev.t; opt_h : Adarev.t }

let init_adarev ?(seed = 5) ~rank ~num_users ~num_items ~alpha () =
  let base = init_model ~seed ~rank ~num_users ~num_items () in
  {
    base;
    opt_w = Adarev.create ~size:(rank * num_users) ~alpha;
    opt_h = Adarev.create ~size:(rank * num_items) ~alpha;
  }

(** Serializable (fresh-gradient) AdaRev step. *)
let body_adarev am ~worker:_ ~key ~value =
  let m = am.base in
  let i = key.(0) and j = key.(1) in
  let nu = m.num_users and ni = m.num_items in
  let pred = ref 0.0 in
  for k = 0 to m.rank - 1 do
    pred := !pred +. (m.w.((k * nu) + i) *. m.h.((k * ni) + j))
  done;
  let diff = value -. !pred in
  for k = 0 to m.rank - 1 do
    let wi = (k * nu) + i and hj = (k * ni) + j in
    let gw = -2.0 *. diff *. m.h.(hj) and gh = -2.0 *. diff *. m.w.(wi) in
    ignore (Adarev.apply_fresh am.opt_w ~params:m.w ~i:wi ~g:gw);
    ignore (Adarev.apply_fresh am.opt_h ~params:m.h ~i:hj ~g:gh)
  done

(* ------------------------------------------------------------------ *)
(* Convenience training loops (serial and Orion-scheduled)             *)
(* ------------------------------------------------------------------ *)

(** Train serially for [epochs] passes, recording the loss after each
    pass.  Returns the loss trajectory (element 0 is the initial
    loss). *)
let train_serial model ~ratings ~step_size ~epochs =
  let traj = Array.make (epochs + 1) 0.0 in
  traj.(0) <- loss model ratings;
  for e = 1 to epochs do
    Dist_array.iter
      (fun key v -> body model ~step_size ~worker:0 ~key ~value:v)
      ratings;
    traj.(e) <- loss model ratings
  done;
  traj

(** Per-sample flop estimate (for the modeled compute cost): one dot
    product and one update over [rank] coordinates. *)
let flops_per_sample rank = float_of_int (6 * rank)
