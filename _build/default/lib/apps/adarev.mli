(** Adaptive Revision (AdaRevision; McMahan & Streeter, NIPS'14): the
    delay-tolerant adaptive gradient rule the paper evaluates as
    "AdaRev" and Bösen implements server-side.  A delayed update
    carries the gradient and the accumulated-gradient snapshot taken at
    read time; the missed progress both inflates the step-size
    statistic and revises the previously applied step. *)

type t = {
  alpha : float;
  z : float array;  (** accumulated squared revised gradients *)
  z_max : float array;  (** running max of [z] (monotone step sizes) *)
  g_bck : float array;  (** accumulated gradients *)
}

val create : size:int -> alpha:float -> t
val size : t -> int

(** The accumulated-gradient snapshot captured when reading coordinate
    [i] (travels with the update). *)
val read_version : t -> int -> float

(** Apply a (possibly delayed) gradient; returns the applied delta. *)
val apply : t -> params:float array -> i:int -> g:float -> g_old:float -> float

(** No-delay (serializable) path: [g_old] is the current accumulator. *)
val apply_fresh : t -> params:float array -> i:int -> g:float -> float
