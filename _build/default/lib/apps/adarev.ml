(** Adaptive Revision (AdaRevision; McMahan & Streeter, NIPS'14) — the
    delay-tolerant adaptive gradient algorithm the paper evaluates as
    "SGD MF AdaRev" and that Bösen implements server-side.

    Per coordinate the server keeps the accumulated gradient [g_bck],
    the accumulated squared revised gradient [z] and its running max
    [z_max].  A delayed update carries the gradient [g] and the value
    of [g_bck] observed when the gradient was computed ([g_old]); the
    missed progress [g_bck − g_old] both inflates the step-size
    statistic and revises the previously-applied step:

      z     += g² + 2·g·(g_bck − g_old)
      z_max  = max(z_max, z)
      η      = α / sqrt(z_max)
      Δ      = −η·g − (η − η_old)·(g_bck − g_old)
      g_bck += g

    With no delay ([g_old = g_bck]) this reduces to AdaGrad with a
    max-normalized accumulator. *)

type t = {
  alpha : float;
  z : float array;
  z_max : float array;
  g_bck : float array;
}

let create ~size ~alpha =
  {
    alpha;
    z = Array.make size 1e-8;
    z_max = Array.make size 1e-8;
    g_bck = Array.make size 0.0;
  }

let size t = Array.length t.z

(** The accumulated-gradient snapshot a worker captures when reading
    parameter [i] (sent back with the update). *)
let read_version t i = t.g_bck.(i)

(** Apply a (possibly delayed) gradient [g] for coordinate [i] to
    [params], returning the applied delta.  [g_old] is the
    accumulated-gradient snapshot captured at read time. *)
let apply t ~(params : float array) ~i ~g ~g_old =
  let missed = t.g_bck.(i) -. g_old in
  let eta_old = t.alpha /. sqrt t.z_max.(i) in
  t.z.(i) <- t.z.(i) +. (g *. g) +. (2.0 *. g *. missed);
  (* z can temporarily dip with adversarial missed terms; z_max keeps
     the step size monotone non-increasing *)
  if t.z.(i) > t.z_max.(i) then t.z_max.(i) <- t.z.(i);
  let eta = t.alpha /. sqrt t.z_max.(i) in
  let delta = (-.eta *. g) -. ((eta -. eta_old) *. missed) in
  t.g_bck.(i) <- t.g_bck.(i) +. g;
  params.(i) <- params.(i) +. delta;
  delta

(** Convenience for the no-delay (serializable) path. *)
let apply_fresh t ~params ~i ~g = apply t ~params ~i ~g ~g_old:t.g_bck.(i)
