(** SGD MF on a Bösen-style parameter server — the manual data-parallel
    baseline of Figs. 9b and 10: random sample partitioning, per-worker
    stale caches, sync once per pass; optional managed communication
    and server-side AdaRevision. *)

type config = {
  num_machines : int;
  workers_per_machine : int;
  rank : int;
  step_size : float;
  alpha : float;
  adarev : bool;
  comm_rounds : int;  (** CM rounds per pass; 0 disables CM *)
  bandwidth_budget_mbps : float;  (** per-machine CM budget *)
  epochs : int;
  per_entry_cost : float;
  cost : Orion_sim.Cost_model.t;
}

val default_config : config

(** Returns the trajectory and the bandwidth recorder (Fig. 12). *)
val train :
  ?config:config ->
  data:Orion_data.Ratings.t ->
  unit ->
  Trajectory.t * Orion_sim.Recorder.t
