(** SGD matrix factorization under Orion's automatic parallelization:
    the script is analyzed, the loop compiled to a (2D unordered, or
    ordered for Table 3) schedule, and executed with the native body.

    Because the schedule preserves all data dependences, the numerics
    equal a serial execution over a permutation of the ratings — this
    is the "Dep-Aware Parallelism" line of Figs. 9–11. *)

open Orion_apps

type config = {
  num_machines : int;
  workers_per_machine : int;
  rank : int;
  step_size : float;  (** plain-SGD step size *)
  alpha : float;  (** AdaRev base rate *)
  adarev : bool;
  ordered : bool;
  epochs : int;
  per_entry_cost : float;  (** modeled seconds per rating per core *)
  pipeline_depth : int;
  cost : Orion.Cost_model.t;
}

let default_config =
  {
    num_machines = 12;
    workers_per_machine = 32;
    rank = 32;
    step_size = 0.005;
    alpha = 0.08;
    adarev = false;
    ordered = false;
    epochs = 20;
    per_entry_cost = 1e-6;
    pipeline_depth = 2;
    cost = Orion.Cost_model.julia_orion;
  }

type result = {
  trajectory : Trajectory.t;
  session : Orion.session;
  plan : Orion.Plan.t;
}

let train ?(config = default_config) ~(data : Orion_data.Ratings.t) () =
  let session =
    Orion.create_session ~cost:config.cost ~num_machines:config.num_machines
      ~workers_per_machine:config.workers_per_machine ()
  in
  let model =
    Sgd_mf.init_model ~rank:config.rank ~num_users:data.num_users
      ~num_items:data.num_items ()
  in
  let adarev_model =
    if config.adarev then
      Some
        (Sgd_mf.init_adarev ~rank:config.rank ~num_users:data.num_users
           ~num_items:data.num_items ~alpha:config.alpha ())
    else None
  in
  let model =
    match adarev_model with Some am -> am.Sgd_mf.base | None -> model
  in
  Sgd_mf.register_arrays session ~ratings:data.ratings model;
  let plan =
    match
      Orion.analyze_script session (Sgd_mf.script_src ~ordered:config.ordered)
    with
    | p :: _ -> p
    | [] -> failwith "no parallel loop in MF script"
  in
  let compiled =
    Orion.compile session ~plan ~iter:data.ratings
      ~pipeline_depth:config.pipeline_depth ()
  in
  let body =
    match adarev_model with
    | Some am -> Sgd_mf.body_adarev am
    | None -> Sgd_mf.body model ~step_size:config.step_size
  in
  (* adaptive revision roughly doubles the per-sample arithmetic *)
  let per_entry_cost =
    if config.adarev then config.per_entry_cost *. 2.5
    else config.per_entry_cost
  in
  let name =
    if config.adarev then "Orion (AdaRev)"
    else if config.ordered then "Orion (ordered)"
    else "Orion"
  in
  let traj = ref (Trajectory.create ~system:name ~workload:"SGD MF") in
  traj :=
    Trajectory.add !traj ~time:0.0 ~iteration:0
      ~metric:(Sgd_mf.loss model data.ratings);
  for e = 1 to config.epochs do
    (* local data is shuffled before every pass, as SGD trainers do *)
    Orion.Schedule.reshuffle compiled.Orion.schedule ~seed:(1000 * e);
    ignore
      (Orion.execute session compiled
         ~compute:(Orion.Executor.Per_entry per_entry_cost)
         ~body ());
    traj :=
      Trajectory.add !traj
        ~time:(Orion.Cluster.now session.cluster)
        ~iteration:e
        ~metric:(Sgd_mf.loss model data.ratings)
  done;
  { trajectory = !traj; session; plan }

(** A purely-serial run on one simulated core (the "serial Julia"
    baseline of Figs. 9a/9b). *)
let train_serial ?(config = default_config) ~(data : Orion_data.Ratings.t) ()
    =
  let session =
    Orion.create_session ~cost:config.cost ~num_machines:1
      ~workers_per_machine:1 ()
  in
  let model =
    Sgd_mf.init_model ~rank:config.rank ~num_users:data.num_users
      ~num_items:data.num_items ()
  in
  let traj = ref (Trajectory.create ~system:"Serial" ~workload:"SGD MF") in
  traj :=
    Trajectory.add !traj ~time:0.0 ~iteration:0
      ~metric:(Sgd_mf.loss model data.ratings);
  for e = 1 to config.epochs do
    ignore
      (Orion.Executor.run_serial session.Orion.cluster
         ~compute:(Orion.Executor.Per_entry config.per_entry_cost)
         ~shuffle_seed:17 data.ratings
         (Sgd_mf.body model ~step_size:config.step_size));
    traj :=
      Trajectory.add !traj
        ~time:(Orion.Cluster.now session.cluster)
        ~iteration:e
        ~metric:(Sgd_mf.loss model data.ratings)
  done;
  !traj
