(** Convergence trajectories: (simulated time, iteration, metric)
    samples recorded after each data pass, the raw material of every
    convergence figure in the paper's evaluation. *)

type point = { time : float; iteration : int; metric : float }

type t = {
  system : string;  (** e.g. "Orion", "Bosen DP", "STRADS" *)
  workload : string;
  points : point list;  (** chronological *)
}

let create ~system ~workload = { system; workload; points = [] }

let add t ~time ~iteration ~metric =
  { t with points = t.points @ [ { time; iteration; metric } ] }

let final_metric t =
  match List.rev t.points with [] -> nan | p :: _ -> p.metric

let final_time t =
  match List.rev t.points with [] -> 0.0 | p :: _ -> p.time

(** First time the metric reaches [threshold] ([`Below] for losses,
    [`Above] for log-likelihoods); [None] if never. *)
let time_to_reach t ~threshold ~direction =
  let ok m =
    match direction with `Below -> m <= threshold | `Above -> m >= threshold
  in
  List.find_map (fun p -> if ok p.metric then Some p.time else None) t.points

(** Average seconds per iteration over the recorded points (excluding
    iteration 0). *)
let avg_time_per_iteration t =
  match t.points with
  | [] | [ _ ] -> nan
  | first :: _ ->
      let last = List.nth t.points (List.length t.points - 1) in
      let iters = last.iteration - first.iteration in
      if iters <= 0 then nan
      else (last.time -. first.time) /. float_of_int iters

let pp fmt t =
  Fmt.pf fmt "# %s on %s@." t.system t.workload;
  Fmt.pf fmt "# iter  time(s)  metric@.";
  List.iter
    (fun p -> Fmt.pf fmt "%6d  %10.3f  %.6g@." p.iteration p.time p.metric)
    t.points

let to_string t = Fmt.str "%a" pp t
