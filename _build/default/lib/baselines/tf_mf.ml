(** SGD MF as a TensorFlow-style minibatch dataflow program — the
    comparison of Fig. 13.

    The TF program builds a DAG that processes one minibatch of matrix
    entries with dense operators and updates W and H only after the
    whole minibatch (parameters are frozen within it).  Consequences
    reproduced here:

    - {b convergence}: minibatch gradient descent with a huge batch
      (the paper uses 25M of Netflix's 100M entries) converges far
      slower per pass than per-sample SGD;
    - {b throughput}: dense operators do redundant work on sparse data
      (modeled by [dense_redundancy]), and small batches under-utilize
      the cores ([min_batch_for_full_util]), making *smaller*
      minibatches slower per pass (paper Fig. 13b). *)

open Orion_apps
module Cluster = Orion_sim.Cluster
module Cost_model = Orion_sim.Cost_model

type config = {
  cores : int;  (** single machine, CPU only (paper §6.4) *)
  rank : int;
  step_size : float;
  minibatch : int;
  epochs : int;
  per_entry_cost : float;
  dense_redundancy : float;  (** extra compute from dense ops on sparse data *)
  min_batch_for_full_util : int;
      (** batches smaller than this leave cores idle *)
}

let default_config =
  {
    cores = 32;
    rank = 32;
    step_size = 10.0;
    minibatch = 10_000;
    epochs = 20;
    per_entry_cost = 1e-6;
    dense_redundancy = 2.2;
    min_batch_for_full_util = 20_000;
  }

(** Seconds of wall-clock for one minibatch on the multi-core machine. *)
let minibatch_seconds config batch_n =
  let work =
    float_of_int batch_n *. config.per_entry_cost *. config.dense_redundancy
  in
  let utilization =
    Float.min 1.0
      (float_of_int batch_n /. float_of_int config.min_batch_for_full_util)
  in
  let effective_cores = Float.max 1.0 (float_of_int config.cores *. utilization) in
  (work /. effective_cores) +. 2e-3 (* per-step DAG dispatch overhead *)

let train ?(config = default_config) ~(data : Orion_data.Ratings.t) () =
  let cluster =
    Cluster.create ~num_machines:1 ~workers_per_machine:1
      ~cost:Cost_model.default ()
  in
  let model =
    Sgd_mf.init_model ~rank:config.rank ~num_users:data.num_users
      ~num_items:data.num_items ()
  in
  let nu = model.num_users and ni = model.num_items in
  let entries = Orion_dsm.Dist_array.entries data.ratings in
  Orion_runtime.Schedule.shuffle_in_place ~seed:17 entries;
  let n = Array.length entries in
  let gw = Array.make (Array.length model.Sgd_mf.w) 0.0 in
  let gh = Array.make (Array.length model.Sgd_mf.h) 0.0 in
  let traj =
    ref
      (Trajectory.create
         ~system:(Printf.sprintf "TensorFlow (batch %d)" config.minibatch)
         ~workload:"SGD MF")
  in
  traj :=
    Trajectory.add !traj ~time:0.0 ~iteration:0
      ~metric:(Sgd_mf.loss model data.ratings);
  for e = 1 to config.epochs do
    let off = ref 0 in
    while !off < n do
      let batch_n = min config.minibatch (n - !off) in
      Array.fill gw 0 (Array.length gw) 0.0;
      Array.fill gh 0 (Array.length gh) 0.0;
      (* gradients w.r.t. parameters frozen for the whole minibatch *)
      for idx = !off to !off + batch_n - 1 do
        let key, v = entries.(idx) in
        let i = key.(0) and j = key.(1) in
        let pred = ref 0.0 in
        for k = 0 to model.rank - 1 do
          pred :=
            !pred +. (model.Sgd_mf.w.((k * nu) + i) *. model.Sgd_mf.h.((k * ni) + j))
        done;
        let diff = v -. !pred in
        for k = 0 to model.rank - 1 do
          let wi = (k * nu) + i and hj = (k * ni) + j in
          gw.(wi) <- gw.(wi) -. (2.0 *. diff *. model.Sgd_mf.h.(hj));
          gh.(hj) <- gh.(hj) -. (2.0 *. diff *. model.Sgd_mf.w.(wi))
        done
      done;
      (* single parameter update per minibatch (mean gradient, so the
         step size is comparable across batch sizes) *)
      let scale = config.step_size /. float_of_int batch_n in
      for i = 0 to Array.length gw - 1 do
        model.Sgd_mf.w.(i) <- model.Sgd_mf.w.(i) -. (scale *. gw.(i))
      done;
      for i = 0 to Array.length gh - 1 do
        model.Sgd_mf.h.(i) <- model.Sgd_mf.h.(i) -. (scale *. gh.(i))
      done;
      Cluster.compute_raw cluster ~worker:0 (minibatch_seconds config batch_n);
      off := !off + batch_n
    done;
    traj :=
      Trajectory.add !traj
        ~time:(Cluster.now cluster)
        ~iteration:e
        ~metric:(Sgd_mf.loss model data.ratings)
  done;
  !traj

(** Time for one full data pass at a given minibatch size (Fig. 13b). *)
let seconds_per_pass config ~num_entries =
  let batches = (num_entries + config.minibatch - 1) / config.minibatch in
  let full = num_entries / config.minibatch in
  let rem = num_entries - (full * config.minibatch) in
  (float_of_int full *. minibatch_seconds config config.minibatch)
  +. (if rem > 0 then minibatch_seconds config rem else 0.0)
  +. (0.0 *. float_of_int batches)
