(** SGD MF under Orion's automatic parallelization (the "Dep-Aware
    Parallelism" series of Figs. 9–11): script analyzed, loop compiled
    to a 2D (un)ordered schedule, native body executed with exact
    numerics. *)

type config = {
  num_machines : int;
  workers_per_machine : int;
  rank : int;
  step_size : float;
  alpha : float;  (** AdaRev base rate *)
  adarev : bool;
  ordered : bool;  (** Table 3's ordered 2D variant *)
  epochs : int;
  per_entry_cost : float;  (** modeled seconds per rating per core *)
  pipeline_depth : int;
  cost : Orion.Cost_model.t;
}

val default_config : config

type result = {
  trajectory : Trajectory.t;
  session : Orion.session;
  plan : Orion.Plan.t;
}

val train : ?config:config -> data:Orion_data.Ratings.t -> unit -> result

(** One simulated core, shuffled sample order (the "serial Julia"
    baseline of Figs. 9a/9b). *)
val train_serial :
  ?config:config -> data:Orion_data.Ratings.t -> unit -> Trajectory.t
