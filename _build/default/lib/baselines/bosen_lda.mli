(** LDA on a Bösen-style parameter server (Figs. 9c, 10c): documents
    partitioned among workers (doc-topic counts local), stale per-worker
    word-topic caches, sync per pass, optional managed communication. *)

type config = {
  num_machines : int;
  workers_per_machine : int;
  num_topics : int;
  comm_rounds : int;
  bandwidth_budget_mbps : float;
  epochs : int;
  per_token_cost : float;
  cost : Orion_sim.Cost_model.t;
}

val default_config : config

val train :
  ?config:config ->
  ?recorder:Orion_sim.Recorder.t ->
  corpus:Orion_data.Corpus.t ->
  unit ->
  Trajectory.t * Orion_sim.Recorder.t
