(** Sparse logistic regression runner — the bulk-prefetching experiment
    of §6.3 and the "SLR (AdaRev)" rows of Table 2.  The weight vector
    is server-hosted; three access modes are compared. *)

type access_mode =
  | No_prefetch  (** a network round trip per weight read *)
  | Prefetch  (** the synthesized slice gathers indices, bulk fetch *)
  | Prefetch_cached  (** gathered indices cached across passes *)

val mode_name : access_mode -> string

type config = {
  num_machines : int;
  workers_per_machine : int;
  step_size : float;
  adarev : bool;
  alpha : float;
  epochs : int;
  per_sample_cost : float;
  mode : access_mode;
  cost : Orion.Cost_model.t;
}

val default_config : config

type result = {
  trajectory : Trajectory.t;
  plan : Orion.Plan.t;
  seconds_per_pass : float array;
  prefetch_program : Orion.Ast.block;
      (** really synthesized from the loop body and interpreted *)
}

val train :
  ?config:config -> data:Orion_data.Sparse_features.t -> unit -> result
