(** LDA under STRADS-style manual model parallelism (Fig. 11b/11c).

    STRADS hand-codes the same doc × word stratified schedule Orion
    derives, so the per-iteration convergence matches Orion's; its
    throughput edge is the C++ implementation and pointer-swap
    intra-machine communication — the paper reports Orion taking
    ~1.8–4× longer per iteration on LDA (§6.4).  Here that shows up as
    the [strads_cpp] cost model with no language overhead. *)

open Orion_apps
module Cluster = Orion_sim.Cluster
module Cost_model = Orion_sim.Cost_model
module Schedule = Orion_runtime.Schedule
module Executor = Orion_runtime.Executor

type config = {
  num_machines : int;
  workers_per_machine : int;
  num_topics : int;
  epochs : int;
  per_token_cost : float;
      (** C++ sampling cost per token (the Julia side divides its cost
          by the language factor to reach parity on arithmetic) *)
}

let default_config =
  {
    num_machines = 12;
    workers_per_machine = 2;
    num_topics = 50;
    epochs = 20;
    per_token_cost = 2e-7 /. 2.5;
  }

let train ?(config = default_config) ~(corpus : Orion_data.Corpus.t) () =
  let cluster =
    Cluster.create ~num_machines:config.num_machines
      ~workers_per_machine:config.workers_per_machine
      ~cost:Cost_model.strads_cpp ()
  in
  let workers = Cluster.num_workers cluster in
  let sched =
    Schedule.partition_2d ~shuffle_seed:17 corpus.tokens ~space_dim:0
      ~time_dim:1 ~space_parts:workers ~time_parts:(workers * 2)
  in
  let model = Lda.init_model ~num_topics:config.num_topics ~corpus () in
  let rotated_bytes =
    float_of_int (corpus.vocab_size * config.num_topics)
    *. 8.0
    /. float_of_int sched.Schedule.time_parts
  in
  let traj = ref (Trajectory.create ~system:"STRADS" ~workload:"LDA") in
  traj :=
    Trajectory.add !traj ~time:0.0 ~iteration:0
      ~metric:(Lda.log_likelihood model);
  for e = 1 to config.epochs do
    ignore
      (Executor.run_2d_unordered cluster
         ~compute:(Executor.Per_entry config.per_token_cost)
         ~pipeline_depth:2 ~rotated_bytes_per_partition:rotated_bytes sched
         (Lda.body model));
    traj :=
      Trajectory.add !traj
        ~time:(Cluster.now cluster)
        ~iteration:e
        ~metric:(Lda.log_likelihood model)
  done;
  !traj
