(** SGD MF as a TensorFlow-style minibatch dataflow program (Fig. 13):
    parameters frozen within each (giant) minibatch, dense-operator
    redundancy, core under-utilization at small batches. *)

type config = {
  cores : int;
  rank : int;
  step_size : float;  (** on the mean minibatch gradient *)
  minibatch : int;
  epochs : int;
  per_entry_cost : float;
  dense_redundancy : float;
  min_batch_for_full_util : int;
}

val default_config : config

val minibatch_seconds : config -> int -> float

val train : ?config:config -> data:Orion_data.Ratings.t -> unit -> Trajectory.t

(** Time for one full data pass at the config's batch size (Fig. 13b). *)
val seconds_per_pass : config -> num_entries:int -> float
