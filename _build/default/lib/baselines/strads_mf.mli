(** SGD MF under STRADS-style manual model parallelism (Fig. 11a): the
    hand-coded stratified schedule with the C++ cost model. *)

type config = {
  num_machines : int;
  workers_per_machine : int;
  rank : int;
  alpha : float;
  adarev : bool;
  step_size : float;
  epochs : int;
  per_entry_cost : float;
}

val default_config : config

val train : ?config:config -> data:Orion_data.Ratings.t -> unit -> Trajectory.t
