lib/baselines/bosen_lda.ml: Array Hashtbl Lda List Option Orion_apps Orion_data Orion_dsm Orion_sim Trajectory
