lib/baselines/tf_mf.mli: Orion_data Trajectory
