lib/baselines/orion_mf.mli: Orion Orion_data Trajectory
