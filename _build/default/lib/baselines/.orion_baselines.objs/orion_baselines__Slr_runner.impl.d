lib/baselines/slr_runner.ml: Adarev Array Hashtbl List Orion Orion_apps Orion_data Printf Slr Sparse_features Trajectory Unix
