lib/baselines/trajectory.mli: Format
