lib/baselines/bosen_mf.ml: Adarev Array Hashtbl List Option Orion_apps Orion_data Orion_dsm Orion_sim Sgd_mf Trajectory
