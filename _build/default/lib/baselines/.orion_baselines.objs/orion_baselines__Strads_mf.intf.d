lib/baselines/strads_mf.mli: Orion_data Trajectory
