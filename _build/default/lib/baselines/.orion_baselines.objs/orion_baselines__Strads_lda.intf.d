lib/baselines/strads_lda.mli: Orion_data Trajectory
