lib/baselines/bosen_lda.mli: Orion_data Orion_sim Trajectory
