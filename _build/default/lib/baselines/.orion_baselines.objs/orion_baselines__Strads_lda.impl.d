lib/baselines/strads_lda.ml: Lda Orion_apps Orion_data Orion_runtime Orion_sim Trajectory
