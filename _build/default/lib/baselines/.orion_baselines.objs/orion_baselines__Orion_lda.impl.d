lib/baselines/orion_lda.ml: Array Lda Orion Orion_apps Orion_data String Trajectory
