lib/baselines/tf_mf.ml: Array Float Orion_apps Orion_data Orion_dsm Orion_runtime Orion_sim Printf Sgd_mf Trajectory
