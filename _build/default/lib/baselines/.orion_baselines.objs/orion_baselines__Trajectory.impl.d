lib/baselines/trajectory.ml: Fmt List
