lib/baselines/strads_mf.ml: Array Orion_apps Orion_data Orion_runtime Orion_sim Sgd_mf Trajectory
