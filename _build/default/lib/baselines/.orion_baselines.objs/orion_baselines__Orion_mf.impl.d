lib/baselines/orion_mf.ml: Orion Orion_apps Orion_data Sgd_mf Trajectory
