lib/baselines/slr_runner.mli: Orion Orion_data Trajectory
