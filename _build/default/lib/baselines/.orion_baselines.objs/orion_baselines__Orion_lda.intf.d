lib/baselines/orion_lda.mli: Orion Orion_apps Orion_data Trajectory
