lib/baselines/bosen_mf.mli: Orion_data Orion_sim Trajectory
