(** LDA under Orion's automatic parallelization.

    The sampling loop is analyzed to a 2D-unordered plan: doc-topic
    counts are locality-partitioned with the space (document)
    dimension, word-topic counts rotate with the time (word)
    dimension, and the topic-totals vector — whose dependence the
    paper's LDA deliberately violates — goes through a DistArray
    Buffer: each worker samples against a slightly-stale local totals
    view, and the buffered deltas merge at the end of the pass. *)

open Orion_apps

type config = {
  num_machines : int;
  workers_per_machine : int;
  num_topics : int;
  ordered : bool;
  epochs : int;
  per_token_cost : float;
  pipeline_depth : int;
  cost : Orion.Cost_model.t;
}

let default_config =
  {
    num_machines = 12;
    workers_per_machine = 2;
    num_topics = 50;
    ordered = false;
    epochs = 20;
    per_token_cost = 2e-7;
    pipeline_depth = 2;
    cost = Orion.Cost_model.julia_orion_lda;
  }

type result = {
  trajectory : Trajectory.t;
  session : Orion.session;
  plan : Orion.Plan.t;
  model : Lda.model;
}

let script_src ~ordered =
  if not ordered then Lda.script
  else
    let sub = "@parallel_for" and by = "@parallel_for ordered" in
    let s = Lda.script in
    let n = String.length s and m = String.length sub in
    let rec find i =
      if i + m > n then None
      else if String.sub s i m = sub then Some i
      else find (i + 1)
    in
    (match find 0 with
    | None -> s
    | Some i -> String.sub s 0 i ^ by ^ String.sub s (i + m) (n - i - m))

let train ?(config = default_config) ?recorder ~(corpus : Orion_data.Corpus.t) () =
  let session =
    Orion.create_session ~cost:config.cost ?recorder
      ~num_machines:config.num_machines
      ~workers_per_machine:config.workers_per_machine ()
  in
  let workers = Orion.Cluster.num_workers session.Orion.cluster in
  let model = Lda.init_model ~num_topics:config.num_topics ~corpus () in
  Lda.register_arrays session ~tokens:corpus.tokens model;
  let plan =
    match Orion.analyze_script session (script_src ~ordered:config.ordered) with
    | p :: _ -> p
    | [] -> failwith "no parallel loop in LDA script"
  in
  let compiled =
    Orion.compile session ~plan ~iter:corpus.tokens
      ~pipeline_depth:config.pipeline_depth ()
  in
  (* per-worker topic-total views + the DistArray Buffer for deltas *)
  let totals_views =
    Array.init workers (fun _ -> Array.copy model.Lda.totals)
  in
  let totals_buffer =
    Orion.Dist_buffer.create ~name:"totals_buf" ~num_workers:workers
      ~combine:( +. )
  in
  let body ~worker ~key ~value:_ =
    Lda.body_with_views model
      ~wt:model.Lda.word_topic.(key.(1))
      ~totals:totals_views.(worker)
      ~on_update:(fun ~word:_ ~topic ~delta ->
        Orion.Dist_buffer.update totals_buffer ~worker ~key:topic delta)
      ~key
  in
  let merge_totals () =
    for w = 0 to workers - 1 do
      ignore
        (Orion.Dist_buffer.flush_apply totals_buffer ~worker:w
           ~udf:(fun topic delta ->
             model.Lda.totals.(topic) <- model.Lda.totals.(topic) +. delta))
    done;
    Array.iter
      (fun view -> Array.blit model.Lda.totals 0 view 0 config.num_topics)
      totals_views
  in
  let name = if config.ordered then "Orion (ordered)" else "Orion" in
  let traj = ref (Trajectory.create ~system:name ~workload:"LDA") in
  traj :=
    Trajectory.add !traj ~time:0.0 ~iteration:0
      ~metric:(Lda.log_likelihood model);
  for e = 1 to config.epochs do
    ignore
      (Orion.execute session compiled
         ~compute:(Orion.Executor.Per_entry config.per_token_cost)
         ~body ());
    merge_totals ();
    traj :=
      Trajectory.add !traj
        ~time:(Orion.Cluster.now session.cluster)
        ~iteration:e
        ~metric:(Lda.log_likelihood model)
  done;
  { trajectory = !traj; session; plan; model }

(** Serial baseline on one simulated core. *)
let train_serial ?(config = default_config) ~(corpus : Orion_data.Corpus.t)
    () =
  let cluster =
    Orion.Cluster.create ~num_machines:1 ~workers_per_machine:1
      ~cost:config.cost ()
  in
  let model = Lda.init_model ~num_topics:config.num_topics ~corpus () in
  let traj = ref (Trajectory.create ~system:"Serial" ~workload:"LDA") in
  traj :=
    Trajectory.add !traj ~time:0.0 ~iteration:0
      ~metric:(Lda.log_likelihood model);
  for e = 1 to config.epochs do
    ignore
      (Orion.Executor.run_serial cluster
         ~compute:(Orion.Executor.Per_entry config.per_token_cost)
         ~shuffle_seed:17 corpus.tokens (Lda.body model));
    traj :=
      Trajectory.add !traj
        ~time:(Orion.Cluster.now cluster)
        ~iteration:e
        ~metric:(Lda.log_likelihood model)
  done;
  !traj
