(** LDA on a Bösen-style parameter server — the data-parallel baseline
    of Figs. 9c and 10c.

    Documents are partitioned among workers (so doc-topic counts are
    local), but the word-topic matrix and topic totals are shared:
    each worker samples a full pass against its own stale cached copy
    and pushes count deltas at the synchronization barrier.  Managed
    communication sends the largest-magnitude word-topic deltas early
    under a bandwidth budget. *)

open Orion_apps
module Cluster = Orion_sim.Cluster
module Cost_model = Orion_sim.Cost_model
module Recorder = Orion_sim.Recorder

type config = {
  num_machines : int;
  workers_per_machine : int;
  num_topics : int;
  comm_rounds : int;  (** CM rounds per pass; 0 = plain data parallelism *)
  bandwidth_budget_mbps : float;  (** per-machine (paper: 2560 for LDA) *)
  epochs : int;
  per_token_cost : float;
  cost : Cost_model.t;
}

let default_config =
  {
    num_machines = 12;
    workers_per_machine = 2;
    num_topics = 50;
    comm_rounds = 0;
    bandwidth_budget_mbps = 2560.0;
    epochs = 20;
    per_token_cost = 2e-7;
    cost = Cost_model.default;
  }

let train ?(config = default_config) ?recorder ~(corpus : Orion_data.Corpus.t) () =
  let recorder =
    match recorder with Some r -> r | None -> Recorder.create ()
  in
  let cluster =
    Cluster.create ~recorder ~num_machines:config.num_machines
      ~workers_per_machine:config.workers_per_machine ~cost:config.cost ()
  in
  let p = Cluster.num_workers cluster in
  let model = Lda.init_model ~num_topics:config.num_topics ~corpus () in
  let k = config.num_topics in
  let v = corpus.vocab_size in
  (* per-worker stale views of word-topic and totals, plus deltas *)
  let wt_views =
    Array.init p (fun _ -> Array.map Array.copy model.Lda.word_topic)
  in
  let totals_views = Array.init p (fun _ -> Array.copy model.Lda.totals) in
  let deltas = Array.init p (fun _ -> Hashtbl.create 4096) in
  (* doc-partitioned shards, balanced by token count *)
  let counts = Orion_dsm.Partitioner.histogram corpus.tokens ~dim:0 in
  let boundaries = Orion_dsm.Partitioner.balanced_ranges ~counts ~parts:p in
  let entries = Orion_dsm.Dist_array.entries corpus.tokens in
  let shards = Array.make p [] in
  Array.iter
    (fun ((key, _) as e) ->
      let w = Orion_dsm.Partitioner.part_of ~boundaries key.(0) in
      shards.(w) <- e :: shards.(w))
    entries;
  let shards = Array.map (fun l -> Array.of_list (List.rev l)) shards in

  let accumulate w word topic delta =
    let key = (word * k) + topic in
    let tbl = deltas.(w) in
    match Hashtbl.find_opt tbl key with
    | None -> Hashtbl.replace tbl key delta
    | Some prev -> Hashtbl.replace tbl key (prev +. delta)
  in
  let process w (key, _) =
    Lda.body_with_views model
      ~wt:wt_views.(w).(key.(1))
      ~totals:totals_views.(w)
      ~on_update:(fun ~word ~topic ~delta -> accumulate w word topic delta)
      ~key
  in

  let sorted_pending tbl =
    Hashtbl.fold (fun i u acc -> (i, u) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let apply_delta (key, delta) =
    let word = key / k and topic = key mod k in
    model.Lda.word_topic.(word).(topic) <-
      model.Lda.word_topic.(word).(topic) +. delta;
    model.Lda.totals.(topic) <- model.Lda.totals.(topic) +. delta
  in
  let refresh_views () =
    for w = 0 to p - 1 do
      for word = 0 to v - 1 do
        Array.blit model.Lda.word_topic.(word) 0 wt_views.(w).(word) 0 k
      done;
      Array.blit model.Lda.totals 0 totals_views.(w) 0 k
    done
  in
  let sync () =
    let max_pending =
      Array.fold_left (fun acc t -> max acc (Hashtbl.length t)) 0 deltas
    in
    let refresh_bytes = float_of_int (v * k) *. 8.0 in
    Cluster.all_reduce cluster
      ~bytes_per_worker:
        ((float_of_int max_pending *. 12.0) +. refresh_bytes);
    Array.iter
      (fun tbl ->
        List.iter apply_delta (sorted_pending tbl);
        Hashtbl.reset tbl)
      deltas;
    refresh_views ()
  in
  let cm_round ~round_seconds =
    let budget_bytes_per_worker =
      config.bandwidth_budget_mbps /. 8.0 *. 1e6 *. round_seconds
      /. float_of_int config.workers_per_machine
    in
    let per_entry = 20.0 in
    let kk = int_of_float (budget_bytes_per_worker /. per_entry) in
    if kk > 0 then begin
      let touched = Hashtbl.create 1024 in
      Array.iteri
        (fun w tbl ->
          let chosen =
            Hashtbl.fold (fun i u acc -> (i, u) :: acc) tbl []
            |> List.sort (fun (_, a) (_, b) ->
                   compare (abs_float b) (abs_float a))
            |> List.filteri (fun idx _ -> idx < kk)
            |> List.sort (fun (a, _) (b, _) -> compare a b)
          in
          List.iter
            (fun ((key, _) as kv) ->
              apply_delta kv;
              Hashtbl.remove tbl key;
              Hashtbl.replace touched key ())
            chosen;
          let bytes = float_of_int (List.length chosen) *. per_entry in
          cluster.Cluster.bytes_sent <- cluster.Cluster.bytes_sent +. bytes;
          Cluster.compute_raw cluster ~worker:w
            (Cost_model.marshal_time config.cost bytes);
          Recorder.record recorder
            ~start_sec:(Cluster.clock cluster w)
            ~duration_sec:(Cost_model.transfer_time config.cost bytes)
            ~bytes)
        deltas;
      (* fresh values for the touched cells flow back to all caches *)
      Hashtbl.iter
        (fun key () ->
          let word = key / k and topic = key mod k in
          for w = 0 to p - 1 do
            let pending =
              Option.value (Hashtbl.find_opt deltas.(w) key) ~default:0.0
            in
            wt_views.(w).(word).(topic) <-
              model.Lda.word_topic.(word).(topic) +. pending
          done)
        touched
    end
  in

  let name = if config.comm_rounds > 0 then "Bosen CM" else "Bosen DP" in
  let traj = ref (Trajectory.create ~system:name ~workload:"LDA") in
  traj :=
    Trajectory.add !traj ~time:0.0 ~iteration:0
      ~metric:(Lda.log_likelihood model);
  for e = 1 to config.epochs do
    let chunks = max 1 config.comm_rounds + 1 in
    for chunk = 0 to chunks - 1 do
      for w = 0 to p - 1 do
        let shard = shards.(w) in
        let sz = Array.length shard in
        let lo = chunk * sz / chunks and hi = (chunk + 1) * sz / chunks in
        let tokens = ref 0 in
        for idx = lo to hi - 1 do
          let _, count = shard.(idx) in
          tokens := !tokens + int_of_float count;
          process w shard.(idx)
        done;
        Cluster.compute cluster ~worker:w
          (float_of_int !tokens *. config.per_token_cost)
      done;
      if config.comm_rounds > 0 && chunk < chunks - 1 then
        cm_round
          ~round_seconds:
            (float_of_int corpus.num_tokens
            /. float_of_int (p * chunks)
            *. config.per_token_cost)
    done;
    sync ();
    traj :=
      Trajectory.add !traj
        ~time:(Cluster.now cluster)
        ~iteration:e
        ~metric:(Lda.log_likelihood model)
  done;
  (!traj, recorder)
