(** LDA under Orion's automatic parallelization: 2D-unordered plan,
    doc-topic counts locality-partitioned, word-topic counts rotated,
    topic totals through a DistArray Buffer (per-worker stale views
    merged each pass — the relaxed non-critical dependence). *)

type config = {
  num_machines : int;
  workers_per_machine : int;
  num_topics : int;
  ordered : bool;
  epochs : int;
  per_token_cost : float;
  pipeline_depth : int;
  cost : Orion.Cost_model.t;
}

val default_config : config

type result = {
  trajectory : Trajectory.t;
  session : Orion.session;
  plan : Orion.Plan.t;
  model : Orion_apps.Lda.model;
}

val script_src : ordered:bool -> string

val train :
  ?config:config ->
  ?recorder:Orion.Recorder.t ->
  corpus:Orion_data.Corpus.t ->
  unit ->
  result

val train_serial :
  ?config:config -> corpus:Orion_data.Corpus.t -> unit -> Trajectory.t
