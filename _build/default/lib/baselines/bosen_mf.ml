(** SGD matrix factorization on a Bösen-style parameter server — the
    manual data-parallel baseline of Figs. 9b and 10 (Wei et al.,
    SoCC'15).

    Ratings are randomly partitioned among workers (data parallelism);
    each worker runs SGD sequentially against its own cached copy of W
    and H (a worker always observes its own updates), and workers
    synchronize once per data pass.  Two refinements reproduce the
    paper's comparison points:

    - {b managed communication (CM)}: between syncs, each worker sends
      its largest-magnitude pending updates under a per-worker
      bandwidth budget, and fresh values propagate back;
    - {b AdaRevision}: workers accumulate raw gradients and the server
      applies them with the delay-compensating adaptive rule
      ({!Orion_apps.Adarev}). *)

open Orion_apps
module Cluster = Orion_sim.Cluster
module Cost_model = Orion_sim.Cost_model
module Recorder = Orion_sim.Recorder

type config = {
  num_machines : int;
  workers_per_machine : int;
  rank : int;
  step_size : float;
  alpha : float;
  adarev : bool;
  comm_rounds : int;  (** CM rounds per data pass; 0 disables CM *)
  bandwidth_budget_mbps : float;  (** per-machine CM budget (paper: 1600) *)
  epochs : int;
  per_entry_cost : float;
  cost : Cost_model.t;
}

let default_config =
  {
    num_machines = 12;
    workers_per_machine = 32;
    rank = 32;
    step_size = 0.005;
    alpha = 0.08;
    adarev = false;
    comm_rounds = 0;
    bandwidth_budget_mbps = 1600.0;
    epochs = 20;
    per_entry_cost = 1e-6;
    cost = Cost_model.default;
  }

(* per-worker state *)
type worker_state = {
  cache : Sgd_mf.model;  (** local view of W and H *)
  dw : (int, float) Hashtbl.t;  (** pending W updates/gradients *)
  dh : (int, float) Hashtbl.t;
  mutable gw_snap : float array;  (** AdaRev g_bck snapshot at refresh *)
  mutable gh_snap : float array;
}

let train ?(config = default_config) ~(data : Orion_data.Ratings.t) () =
  let recorder = Recorder.create () in
  let cluster =
    Cluster.create ~recorder ~num_machines:config.num_machines
      ~workers_per_machine:config.workers_per_machine ~cost:config.cost ()
  in
  let p = Cluster.num_workers cluster in
  let master =
    Sgd_mf.init_model ~rank:config.rank ~num_users:data.num_users
      ~num_items:data.num_items ()
  in
  let opt_w =
    Adarev.create ~size:(Array.length master.w) ~alpha:config.alpha
  in
  let opt_h =
    Adarev.create ~size:(Array.length master.h) ~alpha:config.alpha
  in
  let states =
    Array.init p (fun _ ->
        {
          cache = Sgd_mf.copy_model master;
          dw = Hashtbl.create 1024;
          dh = Hashtbl.create 1024;
          gw_snap = Array.copy opt_w.Adarev.g_bck;
          gh_snap = Array.copy opt_h.Adarev.g_bck;
        })
  in
  let rng = Orion_data.Rng.create 2024 in
  let entries = Orion_dsm.Dist_array.entries data.ratings in
  let n = Array.length entries in
  let nu = master.num_users and ni = master.num_items in

  let accumulate tbl i g =
    match Hashtbl.find_opt tbl i with
    | None -> Hashtbl.replace tbl i g
    | Some prev -> Hashtbl.replace tbl i (prev +. g)
  in

  (* one SGD step against worker w's cache *)
  let process w (key, value) =
    let st = states.(w) in
    let m = st.cache in
    let i = key.(0) and j = key.(1) in
    let pred = ref 0.0 in
    for k = 0 to m.Sgd_mf.rank - 1 do
      pred := !pred +. (m.Sgd_mf.w.((k * nu) + i) *. m.Sgd_mf.h.((k * ni) + j))
    done;
    let diff = value -. !pred in
    for k = 0 to m.Sgd_mf.rank - 1 do
      let wi = (k * nu) + i and hj = (k * ni) + j in
      let gw = -2.0 *. diff *. m.Sgd_mf.h.(hj) in
      let gh = -2.0 *. diff *. m.Sgd_mf.w.(wi) in
      if config.adarev then begin
        (* local step uses the step-size statistic snapshot (including
           the current gradient, so the very first steps are bounded by
           alpha); the raw gradient is what travels to the server *)
        let eta_w =
          config.alpha /. sqrt (opt_w.Adarev.z_max.(wi) +. (gw *. gw))
        in
        let eta_h =
          config.alpha /. sqrt (opt_h.Adarev.z_max.(hj) +. (gh *. gh))
        in
        m.Sgd_mf.w.(wi) <- m.Sgd_mf.w.(wi) -. (eta_w *. gw);
        m.Sgd_mf.h.(hj) <- m.Sgd_mf.h.(hj) -. (eta_h *. gh);
        accumulate st.dw wi gw;
        accumulate st.dh hj gh
      end
      else begin
        let du = -.config.step_size *. gw and dv = -.config.step_size *. gh in
        m.Sgd_mf.w.(wi) <- m.Sgd_mf.w.(wi) +. du;
        m.Sgd_mf.h.(hj) <- m.Sgd_mf.h.(hj) +. dv;
        accumulate st.dw wi du;
        accumulate st.dh hj dv
      end
    done
  in

  (* apply one worker's pending updates for one table to the master *)
  let apply_to_master ~adarev ~params ~opt ~snap tbl chosen =
    List.iter
      (fun (i, u) ->
        if adarev then
          ignore (Adarev.apply opt ~params ~i ~g:u ~g_old:snap.(i))
        else params.(i) <- params.(i) +. u;
        Hashtbl.remove tbl i)
      chosen
  in

  let sorted_pending tbl =
    Hashtbl.fold (fun i u acc -> (i, u) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in

  let refresh_coord st ~table i =
    match table with
    | `W ->
        let pending = Option.value (Hashtbl.find_opt st.dw i) ~default:0.0 in
        let local =
          if config.adarev then
            -.(config.alpha /. sqrt (opt_w.Adarev.z_max.(i) +. (pending *. pending)))
            *. pending
          else pending
        in
        st.cache.Sgd_mf.w.(i) <- master.w.(i) +. local;
        st.gw_snap.(i) <- opt_w.Adarev.g_bck.(i)
    | `H ->
        let pending = Option.value (Hashtbl.find_opt st.dh i) ~default:0.0 in
        let local =
          if config.adarev then
            -.(config.alpha /. sqrt (opt_h.Adarev.z_max.(i) +. (pending *. pending)))
            *. pending
          else pending
        in
        st.cache.Sgd_mf.h.(i) <- master.h.(i) +. local;
        st.gh_snap.(i) <- opt_h.Adarev.g_bck.(i)
  in

  (* full synchronization barrier at the end of a pass *)
  let sync () =
    let max_pending =
      Array.fold_left
        (fun acc st ->
          max acc (Hashtbl.length st.dw + Hashtbl.length st.dh))
        0 states
    in
    let model_bytes =
      float_of_int (Array.length master.w + Array.length master.h) *. 8.0
    in
    Cluster.all_reduce cluster
      ~bytes_per_worker:(float_of_int max_pending *. 12.0 +. model_bytes);
    Array.iter
      (fun st ->
        apply_to_master ~adarev:config.adarev ~params:master.w ~opt:opt_w
          ~snap:st.gw_snap st.dw (sorted_pending st.dw);
        apply_to_master ~adarev:config.adarev ~params:master.h ~opt:opt_h
          ~snap:st.gh_snap st.dh (sorted_pending st.dh))
      states;
    Array.iter
      (fun st ->
        Array.blit master.w 0 st.cache.Sgd_mf.w 0 (Array.length master.w);
        Array.blit master.h 0 st.cache.Sgd_mf.h 0 (Array.length master.h);
        st.gw_snap <- Array.copy opt_w.Adarev.g_bck;
        st.gh_snap <- Array.copy opt_h.Adarev.g_bck)
      states
  in

  (* one managed-communication round: top-k updates under the budget *)
  let cm_round ~round_seconds =
    let budget_bytes_per_machine =
      config.bandwidth_budget_mbps /. 8.0 *. 1e6 *. round_seconds
    in
    let budget_bytes_per_worker =
      budget_bytes_per_machine /. float_of_int config.workers_per_machine
    in
    let per_entry = 20.0 (* key + value up, value down *) in
    let k = int_of_float (budget_bytes_per_worker /. per_entry) in
    if k > 0 then begin
      let touched_w = Hashtbl.create 256 and touched_h = Hashtbl.create 256 in
      Array.iteri
        (fun w st ->
          let top tbl =
            Hashtbl.fold (fun i u acc -> (i, u) :: acc) tbl []
            |> List.sort (fun (_, a) (_, b) ->
                   compare (abs_float b) (abs_float a))
            |> List.filteri (fun idx _ -> idx < k)
            |> List.sort (fun (a, _) (b, _) -> compare a b)
          in
          let cw = top st.dw and ch = top st.dh in
          apply_to_master ~adarev:config.adarev ~params:master.w ~opt:opt_w
            ~snap:st.gw_snap st.dw cw;
          apply_to_master ~adarev:config.adarev ~params:master.h ~opt:opt_h
            ~snap:st.gh_snap st.dh ch;
          List.iter (fun (i, _) -> Hashtbl.replace touched_w i ()) cw;
          List.iter (fun (i, _) -> Hashtbl.replace touched_h i ()) ch;
          let bytes =
            float_of_int (List.length cw + List.length ch) *. per_entry
          in
          cluster.Cluster.bytes_sent <- cluster.Cluster.bytes_sent +. bytes;
          Cluster.compute_raw cluster ~worker:w
            (Cost_model.marshal_time config.cost bytes);
          Recorder.record recorder
            ~start_sec:(Cluster.clock cluster w)
            ~duration_sec:(Cost_model.transfer_time config.cost bytes)
            ~bytes)
        states;
      (* fresh values flow to every cache *)
      Array.iter
        (fun st ->
          Hashtbl.iter (fun i () -> refresh_coord st ~table:`W i) touched_w;
          Hashtbl.iter (fun i () -> refresh_coord st ~table:`H i) touched_h)
        states
    end
  in

  let name =
    match (config.adarev, config.comm_rounds > 0) with
    | false, false -> "Bosen DP"
    | false, true -> "Bosen CM"
    | true, false -> "Bosen DP (AdaRev)"
    | true, true -> "Bosen CM (AdaRev)"
  in
  let traj = ref (Trajectory.create ~system:name ~workload:"SGD MF") in
  traj :=
    Trajectory.add !traj ~time:0.0 ~iteration:0
      ~metric:(Sgd_mf.loss master data.ratings);
  for epoch = 1 to config.epochs do
    (* random (re)partitioning of the samples: data parallelism *)
    let perm = Orion_data.Rng.permutation rng n in
    let chunks = max 1 config.comm_rounds + 1 in
    let shard_size = (n + p - 1) / p in
    for chunk = 0 to chunks - 1 do
      let chunk_entries = ref 0 in
      for w = 0 to p - 1 do
        let lo = (w * shard_size) + (chunk * shard_size / chunks) in
        let hi = min ((w * shard_size) + ((chunk + 1) * shard_size / chunks)) n in
        let hi = min hi ((w + 1) * shard_size) in
        for idx = lo to hi - 1 do
          if idx < n then begin
            process w entries.(perm.(idx));
            incr chunk_entries
          end
        done;
        Cluster.compute cluster ~worker:w
          (float_of_int (max 0 (hi - lo)) *. config.per_entry_cost)
      done;
      if config.comm_rounds > 0 && chunk < chunks - 1 then
        cm_round
          ~round_seconds:
            (float_of_int shard_size /. float_of_int chunks
            *. config.per_entry_cost)
    done;
    sync ();
    traj :=
      Trajectory.add !traj
        ~time:(Cluster.now cluster)
        ~iteration:epoch
        ~metric:(Sgd_mf.loss master data.ratings)
  done;
  (!traj, recorder)
