(** SGD MF under STRADS-style manual model parallelism (Kim et al.,
    EuroSys'16) — the comparison of Fig. 11a.

    STRADS applications hand-code the stratified schedule Orion
    derives automatically: the schedule here is constructed directly
    (no analysis, no code generation), and the cost model is the C++
    one — in particular, intra-machine communication is pointer
    swapping (§6.4), which is STRADS's main throughput edge over the
    Julia-based prototype. *)

open Orion_apps
module Cluster = Orion_sim.Cluster
module Cost_model = Orion_sim.Cost_model
module Schedule = Orion_runtime.Schedule
module Executor = Orion_runtime.Executor

type config = {
  num_machines : int;
  workers_per_machine : int;
  rank : int;
  alpha : float;  (** STRADS SGD MF uses adaptive revision too *)
  adarev : bool;
  step_size : float;
  epochs : int;
  per_entry_cost : float;
}

let default_config =
  {
    num_machines = 12;
    workers_per_machine = 32;
    rank = 32;
    alpha = 0.08;
    adarev = true;
    step_size = 0.005;
    epochs = 20;
    per_entry_cost = 1e-6;
  }

let train ?(config = default_config) ~(data : Orion_data.Ratings.t) () =
  let cluster =
    Cluster.create ~num_machines:config.num_machines
      ~workers_per_machine:config.workers_per_machine
      ~cost:Cost_model.strads_cpp ()
  in
  let workers = Cluster.num_workers cluster in
  (* the hand-written stratified schedule: workers × (2·workers) blocks *)
  let sched =
    Schedule.partition_2d ~shuffle_seed:17 data.ratings ~space_dim:0
      ~time_dim:1 ~space_parts:workers ~time_parts:(workers * 2)
  in
  let am =
    Sgd_mf.init_adarev ~rank:config.rank ~num_users:data.num_users
      ~num_items:data.num_items ~alpha:config.alpha ()
  in
  let model = am.Sgd_mf.base in
  let body =
    if config.adarev then Sgd_mf.body_adarev am
    else Sgd_mf.body model ~step_size:config.step_size
  in
  (* adaptive revision roughly doubles per-sample arithmetic, in C++
     as in Julia *)
  let per_entry_cost =
    if config.adarev then config.per_entry_cost *. 2.5
    else config.per_entry_cost
  in
  let rotated_bytes =
    (* H rotates between workers, as in Orion's plan *)
    float_of_int (Array.length model.Sgd_mf.h)
    *. 8.0
    /. float_of_int sched.Schedule.time_parts
  in
  let traj =
    ref (Trajectory.create ~system:"STRADS" ~workload:"SGD MF")
  in
  traj :=
    Trajectory.add !traj ~time:0.0 ~iteration:0
      ~metric:(Sgd_mf.loss model data.ratings);
  for e = 1 to config.epochs do
    Schedule.reshuffle sched ~seed:(1000 * e);
    ignore
      (Executor.run_2d_unordered cluster
         ~compute:(Executor.Per_entry per_entry_cost)
         ~pipeline_depth:2 ~rotated_bytes_per_partition:rotated_bytes sched
         body);
    traj :=
      Trajectory.add !traj
        ~time:(Cluster.now cluster)
        ~iteration:e
        ~metric:(Sgd_mf.loss model data.ratings)
  done;
  !traj
