(** Convergence trajectories: (simulated time, iteration, metric)
    samples, the raw material of every convergence figure. *)

type point = { time : float; iteration : int; metric : float }

type t = {
  system : string;
  workload : string;
  points : point list;  (** chronological *)
}

val create : system:string -> workload:string -> t
val add : t -> time:float -> iteration:int -> metric:float -> t
val final_metric : t -> float
val final_time : t -> float

(** First time the metric crosses [threshold]; [None] if never. *)
val time_to_reach :
  t -> threshold:float -> direction:[ `Below | `Above ] -> float option

(** Average seconds per iteration over the recorded points. *)
val avg_time_per_iteration : t -> float

val pp : Format.formatter -> t -> unit
val to_string : t -> string
