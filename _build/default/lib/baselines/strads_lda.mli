(** LDA under STRADS-style manual model parallelism (Fig. 11b/11c):
    the same stratified schedule with the C++ cost model (pointer-swap
    intra-machine communication, no marshalling). *)

type config = {
  num_machines : int;
  workers_per_machine : int;
  num_topics : int;
  epochs : int;
  per_token_cost : float;
}

val default_config : config

val train : ?config:config -> corpus:Orion_data.Corpus.t -> unit -> Trajectory.t
