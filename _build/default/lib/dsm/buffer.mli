(** DistArray Buffers (paper §3.3): per-worker write-back buffers whose
    writes are exempt from dependence analysis, later applied to the
    backing DistArray through an atomic element-wise UDF. *)

type 'u t = {
  name : string;
  num_workers : int;
  tables : (int, 'u) Hashtbl.t array;
  combine : 'u -> 'u -> 'u;
}

val create : name:string -> num_workers:int -> combine:('u -> 'u -> 'u) -> 'u t

(** Record an update for a (linearized) element key in one worker's
    instance; merged with any pending update via [combine]. *)
val update : 'u t -> worker:int -> key:int -> 'u -> unit

val pending_count : 'u t -> worker:int -> int
val pending_bytes : ?bytes_per_update:float -> 'u t -> worker:int -> float

(** Drain one worker's buffer, sorted by key (deterministic apply). *)
val flush : 'u t -> worker:int -> (int * 'u) list

(** Drain and apply through the UDF; returns the element count. *)
val flush_apply : 'u t -> worker:int -> udf:(int -> 'u -> unit) -> int

val peek : 'u t -> worker:int -> (int * 'u) list
val remove : 'u t -> worker:int -> key:int -> unit
val reset : 'u t -> unit
