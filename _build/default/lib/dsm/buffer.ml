(** DistArray Buffers (paper §3.3).

    A write-back buffer for a DistArray: each simulated worker holds a
    buffer instance (initially empty); the application applies writes
    to the buffer instead of the DistArray, exempting them from
    dependence analysis.  Buffered writes are later applied to the
    backing DistArray through an element-wise user-defined function
    executed atomically per element (which is what makes adaptive
    gradient algorithms such as AdaRevision implementable). *)

type 'u t = {
  name : string;
  num_workers : int;
  tables : (int, 'u) Hashtbl.t array;  (** linearized key -> pending update *)
  combine : 'u -> 'u -> 'u;
      (** merge a new update into a pending one for the same element *)
}

let create ~name ~num_workers ~combine =
  {
    name;
    num_workers;
    tables = Array.init num_workers (fun _ -> Hashtbl.create 256);
    combine;
  }

(** Record an update for [key] in worker [w]'s buffer instance. *)
let update t ~worker ~key (u : 'u) =
  let tbl = t.tables.(worker) in
  match Hashtbl.find_opt tbl key with
  | None -> Hashtbl.replace tbl key u
  | Some prev -> Hashtbl.replace tbl key (t.combine prev u)

let pending_count t ~worker = Hashtbl.length t.tables.(worker)

(** Bytes a flush would send (key + update payload). *)
let pending_bytes ?(bytes_per_update = 16.0) t ~worker =
  float_of_int (pending_count t ~worker) *. bytes_per_update

(** Drain worker [w]'s buffer, returning updates sorted by key so that
    applying them is deterministic. *)
let flush t ~worker =
  let tbl = t.tables.(worker) in
  let items = Hashtbl.fold (fun k u acc -> (k, u) :: acc) tbl [] in
  Hashtbl.reset tbl;
  List.sort (fun (a, _) (b, _) -> compare a b) items

(** Drain and apply through the user-defined apply function, which
    receives the element's linearized key and the merged update.  The
    UDF is executed once per element (atomic read-modify-write). *)
let flush_apply t ~worker ~udf =
  let items = flush t ~worker in
  List.iter (fun (k, u) -> udf k u) items;
  List.length items

(** Peek without draining (used by communication managers to pick the
    largest pending updates). *)
let peek t ~worker =
  Hashtbl.fold (fun k u acc -> (k, u) :: acc) t.tables.(worker) []

let remove t ~worker ~key = Hashtbl.remove t.tables.(worker) key

let reset t = Array.iter Hashtbl.reset t.tables
