(** A Bösen-style parameter server (Wei et al., SoCC'15): sharded master
    copy, per-worker caches that always reflect the worker's own
    updates, per-pass synchronization, managed communication under a
    bandwidth budget, and the random-access / bulk-prefetch read paths
    of paper §6.3. *)

type t

val create :
  cluster:Orion_sim.Cluster.t ->
  name:string ->
  size:int ->
  init:(int -> float) ->
  t

val size : t -> int

(** The master copy (mutated by [sync] / [communicate_round]). *)
val master : t -> float array

(** Read parameter [i] from one worker's cache. *)
val read : t -> worker:int -> int -> float

(** Apply a delta: visible to this worker immediately, to others after
    communication. *)
val update : t -> worker:int -> int -> float -> unit

val pending_updates : t -> worker:int -> int

(** Per-pass synchronization barrier: apply all deltas, refresh caches;
    charges the all-reduce.  [cache_entries] bounds the per-worker
    refresh size (defaults to the whole model). *)
val sync : ?cache_entries:int -> t -> unit

(** One managed-communication round: each worker's largest-magnitude
    pending deltas, limited by the byte budget, reach the master and
    fresh values flow back.  Returns bytes sent. *)
val communicate_round : t -> budget_bytes_per_worker:float -> float

(** A server-side random access: charges a network round trip. *)
val random_access_read : t -> worker:int -> int -> float

(** A bulk prefetch of [n] entries: one round trip plus streaming. *)
val bulk_fetch : t -> worker:int -> n:int -> unit
