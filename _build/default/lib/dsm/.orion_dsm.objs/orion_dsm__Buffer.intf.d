lib/dsm/buffer.mli: Hashtbl
