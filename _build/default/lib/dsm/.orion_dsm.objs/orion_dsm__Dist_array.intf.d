lib/dsm/dist_array.mli: Hashtbl Orion_lang
