lib/dsm/pipeline.ml: Dist_array Fun List Option String
