lib/dsm/param_server.ml: Array Hashtbl List Option Orion_sim
