lib/dsm/buffer.ml: Array Hashtbl List
