lib/dsm/partitioner.mli: Dist_array
