lib/dsm/accumulator.ml: Array
