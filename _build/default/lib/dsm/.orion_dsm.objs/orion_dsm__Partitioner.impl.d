lib/dsm/partitioner.ml: Array Dist_array Fun Int64 List
