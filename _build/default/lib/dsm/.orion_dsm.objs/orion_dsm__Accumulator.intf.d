lib/dsm/accumulator.mli:
