lib/dsm/param_server.mli: Orion_sim
