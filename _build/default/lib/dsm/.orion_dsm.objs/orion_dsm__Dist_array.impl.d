lib/dsm/dist_array.ml: Array Fun Hashtbl List Marshal Option Orion_lang Printf String
