lib/dsm/pipeline.mli: Dist_array
