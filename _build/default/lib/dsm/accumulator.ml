(** Accumulators (paper §3.4).

    An accumulator variable has one instance per worker, retained
    across for-loop executions; the driver aggregates all instances
    with a user-defined commutative and associative operator and can
    reset them. *)

type 'a t = {
  name : string;
  init : 'a;
  instances : 'a array;  (** one per worker *)
}

let create ~name ~num_workers ~init =
  { name; init; instances = Array.make num_workers init }

let add t ~worker ~op v =
  t.instances.(worker) <- op t.instances.(worker) v

let set t ~worker v = t.instances.(worker) <- v

let get t ~worker = t.instances.(worker)

(** Aggregate all workers' instances with [op] (the paper's
    [Orion.get_aggregated_value]).  Pure aggregation; the runtime
    charges the all-reduce communication separately. *)
let aggregated t ~op =
  Array.fold_left op t.init t.instances

let reset t = Array.fill t.instances 0 (Array.length t.instances) t.init
