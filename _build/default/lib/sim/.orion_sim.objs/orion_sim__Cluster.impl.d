lib/sim/cluster.ml: Array Cost_model Recorder
