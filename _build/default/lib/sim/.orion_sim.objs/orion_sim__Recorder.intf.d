lib/sim/recorder.mli:
