lib/sim/recorder.ml: Array
