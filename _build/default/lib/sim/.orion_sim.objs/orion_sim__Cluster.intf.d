lib/sim/cluster.mli: Cost_model Recorder
