(** Cost model for the simulated cluster.

    The paper evaluates on 42 machines (16-core Xeon E5-2698Bv3,
    hyper-threaded, 64 GiB RAM, 40 Gbps Ethernet).  We reproduce the
    *structure* of their costs: per-sample computation (calibrated by
    actually running the OCaml kernels, then scaled by a documented
    language factor), network transfer (bandwidth + latency), and
    marshalling CPU cost, which the paper identifies as a significant
    overhead for Julia's inter-process communication (§6.4). *)

type t = {
  network_bandwidth_bytes_per_sec : float;
      (** per-machine NIC bandwidth (40 Gbps default) *)
  network_latency_sec : float;  (** one-way message latency *)
  marshal_cost_sec_per_byte : float;
      (** CPU cost of serializing data for inter-process transfer *)
  intra_machine_bytes_per_sec : float;
      (** memory-copy bandwidth for same-machine transfers *)
  language_overhead : float;
      (** multiplier on measured OCaml compute time to model the
          application language (Julia ≈ 1.0–4.0 vs C++ depending on
          workload; see DESIGN.md §5) *)
  barrier_cost_sec : float;  (** cost of a global synchronization *)
}

let default =
  {
    network_bandwidth_bytes_per_sec = 40e9 /. 8.0;
    network_latency_sec = 1e-4;
    marshal_cost_sec_per_byte = 2e-10;
    intra_machine_bytes_per_sec = 8e9;
    language_overhead = 1.0;
    barrier_cost_sec = 5e-5;
  }

(** Julia prototype: array-heavy kernels (SGD MF) run at roughly C++
    speed, so only marshalling distinguishes it. *)
let julia_orion = { default with language_overhead = 1.0 }

(** Julia LDA: scalar sampling loops; the paper reports 1.8–4x slower
    iterations than STRADS C++ largely due to marshalling and language
    overhead. *)
let julia_orion_lda = { default with language_overhead = 2.5 }

(** STRADS C++: intra-machine communication is pointer swapping. *)
let strads_cpp =
  {
    default with
    language_overhead = 1.0;
    marshal_cost_sec_per_byte = 0.0;
    intra_machine_bytes_per_sec = infinity;
  }

(** Transfer time for [bytes] across the network (excluding latency). *)
let transfer_time t bytes = bytes /. t.network_bandwidth_bytes_per_sec

let marshal_time t bytes = bytes *. t.marshal_cost_sec_per_byte

let intra_transfer_time t bytes = bytes /. t.intra_machine_bytes_per_sec
