(** The simulated distributed cluster.

    Workers are arranged on machines; each worker advances a private
    virtual clock.  Computation charges time to one worker's clock;
    communication charges marshalling CPU to the sender, transfer time
    over the (shared per-machine) network, and synchronizes the
    receiver's clock with the arrival time.  Barriers align all clocks.

    The real numeric work is executed in-process by the caller; the
    cluster only accounts for *when* each piece would have happened on
    the paper's testbed. *)

type t = {
  num_machines : int;
  workers_per_machine : int;
  cost : Cost_model.t;
  clocks : float array;  (** per-worker virtual time *)
  recorder : Recorder.t;
  mutable bytes_sent : float;
  mutable messages_sent : int;
}

let create ?(recorder = Recorder.create ()) ~num_machines ~workers_per_machine
    ~cost () =
  {
    num_machines;
    workers_per_machine;
    cost;
    clocks = Array.make (num_machines * workers_per_machine) 0.0;
    recorder;
    bytes_sent = 0.0;
    messages_sent = 0;
  }

let num_workers t = t.num_machines * t.workers_per_machine
let machine_of t w = w / t.workers_per_machine
let clock t w = t.clocks.(w)
let now t = Array.fold_left max 0.0 t.clocks

(** Advance all clocks to at least [time] (e.g. after driver-side work). *)
let advance_all t time =
  Array.iteri (fun i c -> if c < time then t.clocks.(i) <- time) t.clocks

(** Charge [seconds] of computation (already scaled by the caller if
    it was measured rather than modeled) to worker [w]. *)
let compute t ~worker seconds =
  t.clocks.(worker) <- t.clocks.(worker) +. (seconds *. t.cost.language_overhead)

(** Charge unscaled time (system work such as hash-table maintenance
    that is not application-language code). *)
let compute_raw t ~worker seconds =
  t.clocks.(worker) <- t.clocks.(worker) +. seconds

(** Transfer [bytes] from [src] to [dst]; returns the arrival time but
    does not block the receiver (use [recv] or [send_recv]). *)
let send t ~src ~dst ~bytes =
  t.bytes_sent <- t.bytes_sent +. bytes;
  t.messages_sent <- t.messages_sent + 1;
  let same_machine = machine_of t src = machine_of t dst in
  if same_machine then begin
    let d = Cost_model.intra_transfer_time t.cost bytes in
    t.clocks.(src) <- t.clocks.(src) +. d;
    t.clocks.(src)
  end
  else begin
    let m = Cost_model.marshal_time t.cost bytes in
    t.clocks.(src) <- t.clocks.(src) +. m;
    let start = t.clocks.(src) in
    let d = Cost_model.transfer_time t.cost bytes in
    Recorder.record t.recorder ~start_sec:start ~duration_sec:d ~bytes;
    start +. t.cost.network_latency_sec +. d
  end

(** Block worker [dst] until [arrival] (plus unmarshalling cost for
    cross-machine transfers, charged as marshalling again). *)
let recv t ~dst ~arrival ~bytes ~cross_machine =
  t.clocks.(dst) <- max t.clocks.(dst) arrival;
  if cross_machine then
    t.clocks.(dst) <- t.clocks.(dst) +. Cost_model.marshal_time t.cost bytes

(** Synchronous point-to-point transfer. *)
let send_recv t ~src ~dst ~bytes =
  let arrival = send t ~src ~dst ~bytes in
  recv t ~dst ~arrival ~bytes
    ~cross_machine:(machine_of t src <> machine_of t dst)

(** Global barrier: all workers wait for the slowest. *)
let barrier t =
  let m = now t +. t.cost.barrier_cost_sec in
  Array.fill t.clocks 0 (Array.length t.clocks) m

(** Reduce-and-broadcast of [bytes_per_worker] (e.g. accumulators or a
    data-parallel parameter sync): a simple flat aggregation model —
    every machine sends its workers' data to a coordinator and receives
    the merged result. *)
let all_reduce t ~bytes_per_worker =
  barrier t;
  let per_machine = bytes_per_worker *. float_of_int t.workers_per_machine in
  let total_in = per_machine *. float_of_int (max 0 (t.num_machines - 1)) in
  (* inbound to the coordinator is serialized on its NIC; outbound
     broadcast likewise *)
  let d = 2.0 *. Cost_model.transfer_time t.cost total_in in
  let m =
    2.0 *. Cost_model.marshal_time t.cost per_machine
    +. t.cost.network_latency_sec *. 2.0
  in
  t.bytes_sent <- t.bytes_sent +. (2.0 *. total_in);
  Recorder.record t.recorder ~start_sec:(now t) ~duration_sec:d
    ~bytes:(2.0 *. total_in);
  let finish = now t +. d +. m in
  Array.fill t.clocks 0 (Array.length t.clocks) finish

(** Reset clocks (new experiment) without discarding the recorder. *)
let reset t =
  Array.fill t.clocks 0 (Array.length t.clocks) 0.0;
  t.bytes_sent <- 0.0;
  t.messages_sent <- 0
