(** Cost model for the simulated cluster (paper testbed: 42 machines,
    16-core Xeons, 40 Gbps Ethernet).  See DESIGN.md §5 for
    calibration. *)

type t = {
  network_bandwidth_bytes_per_sec : float;
  network_latency_sec : float;
  marshal_cost_sec_per_byte : float;
      (** serialization CPU cost — a significant Julia overhead per
          paper §6.4 *)
  intra_machine_bytes_per_sec : float;
  language_overhead : float;
      (** multiplier on compute time modeling the application language *)
  barrier_cost_sec : float;
}

val default : t

(** Julia / Orion prototype: array kernels at ~C++ speed. *)
val julia_orion : t

(** Julia LDA: scalar sampling loops, 1.8–4x slower than C++ (§6.4). *)
val julia_orion_lda : t

(** STRADS C++: no marshalling, pointer-swap intra-machine transfers. *)
val strads_cpp : t

val transfer_time : t -> float -> float
val marshal_time : t -> float -> float
val intra_transfer_time : t -> float -> float
