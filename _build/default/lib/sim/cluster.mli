(** The simulated distributed cluster: per-worker virtual clocks with
    computation and communication charging.  Numeric work executes
    in-process; the cluster only accounts for *when* it would have
    happened on the paper's testbed. *)

type t = {
  num_machines : int;
  workers_per_machine : int;
  cost : Cost_model.t;
  clocks : float array;
  recorder : Recorder.t;
  mutable bytes_sent : float;
  mutable messages_sent : int;
}

val create :
  ?recorder:Recorder.t ->
  num_machines:int ->
  workers_per_machine:int ->
  cost:Cost_model.t ->
  unit ->
  t

val num_workers : t -> int
val machine_of : t -> int -> int
val clock : t -> int -> float

(** The latest clock — "cluster time". *)
val now : t -> float

(** Advance every clock to at least [time]. *)
val advance_all : t -> float -> unit

(** Charge computation to one worker, scaled by the cost model's
    language factor. *)
val compute : t -> worker:int -> float -> unit

(** Charge unscaled (system) time to one worker. *)
val compute_raw : t -> worker:int -> float -> unit

(** Start a transfer; returns the arrival time.  Same-machine transfers
    are memory copies charged to the sender. *)
val send : t -> src:int -> dst:int -> bytes:float -> float

(** Block [dst] until [arrival] (plus unmarshalling for cross-machine
    transfers). *)
val recv : t -> dst:int -> arrival:float -> bytes:float -> cross_machine:bool -> unit

(** Synchronous point-to-point transfer. *)
val send_recv : t -> src:int -> dst:int -> bytes:float -> unit

(** Global barrier: align all clocks on the slowest worker. *)
val barrier : t -> unit

(** Reduce-and-broadcast of [bytes_per_worker] (accumulators,
    data-parallel parameter syncs). *)
val all_reduce : t -> bytes_per_worker:float -> unit

(** Reset clocks and counters (keeps the recorder). *)
val reset : t -> unit
