(** Hand-written lexer for OrionScript.

    Produces a token stream with line/column positions for error
    reporting.  Comments start with [#] and run to end of line. *)

type token =
  | INT of int
  | FLOAT of float
  | STRING of string
  | IDENT of string
  | KW_FOR
  | KW_IN
  | KW_END
  | KW_IF
  | KW_ELSE
  | KW_ELSEIF
  | KW_WHILE
  | KW_TRUE
  | KW_FALSE
  | KW_BREAK
  | KW_CONTINUE
  | KW_PARALLEL_FOR  (** [@parallel_for] *)
  | KW_ORDERED
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | CARET
  | EQ  (** [=] *)
  | PLUS_EQ
  | MINUS_EQ
  | STAR_EQ
  | SLASH_EQ
  | EQEQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | ANDAND
  | OROR
  | BANG
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | COMMA
  | COLON
  | NEWLINE
  | EOF

type pos = { line : int; col : int }

type located = { tok : token; pos : pos }

exception Lex_error of string * pos

let token_name = function
  | INT n -> Printf.sprintf "INT(%d)" n
  | FLOAT f -> Printf.sprintf "FLOAT(%g)" f
  | STRING s -> Printf.sprintf "STRING(%S)" s
  | IDENT s -> Printf.sprintf "IDENT(%s)" s
  | KW_FOR -> "for"
  | KW_IN -> "in"
  | KW_END -> "end"
  | KW_IF -> "if"
  | KW_ELSE -> "else"
  | KW_ELSEIF -> "elseif"
  | KW_WHILE -> "while"
  | KW_TRUE -> "true"
  | KW_FALSE -> "false"
  | KW_BREAK -> "break"
  | KW_CONTINUE -> "continue"
  | KW_PARALLEL_FOR -> "@parallel_for"
  | KW_ORDERED -> "ordered"
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | CARET -> "^"
  | EQ -> "="
  | PLUS_EQ -> "+="
  | MINUS_EQ -> "-="
  | STAR_EQ -> "*="
  | SLASH_EQ -> "/="
  | EQEQ -> "=="
  | NE -> "!="
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | ANDAND -> "&&"
  | OROR -> "||"
  | BANG -> "!"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | COMMA -> ","
  | COLON -> ":"
  | NEWLINE -> "<newline>"
  | EOF -> "<eof>"

let keyword_of_ident = function
  | "for" -> Some KW_FOR
  | "in" -> Some KW_IN
  | "end" -> Some KW_END
  | "if" -> Some KW_IF
  | "else" -> Some KW_ELSE
  | "elseif" -> Some KW_ELSEIF
  | "while" -> Some KW_WHILE
  | "true" -> Some KW_TRUE
  | "false" -> Some KW_FALSE
  | "break" -> Some KW_BREAK
  | "continue" -> Some KW_CONTINUE
  | "ordered" -> Some KW_ORDERED
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

type state = {
  src : string;
  mutable off : int;
  mutable line : int;
  mutable col : int;
}

let peek st = if st.off < String.length st.src then Some st.src.[st.off] else None

let peek2 st =
  if st.off + 1 < String.length st.src then Some st.src.[st.off + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.off <- st.off + 1

let current_pos st = { line = st.line; col = st.col }

let rec skip_spaces_and_comments st =
  match peek st with
  | Some (' ' | '\t' | '\r') ->
      advance st;
      skip_spaces_and_comments st
  | Some '#' ->
      let rec to_eol () =
        match peek st with
        | Some '\n' | None -> ()
        | Some _ ->
            advance st;
            to_eol ()
      in
      to_eol ();
      skip_spaces_and_comments st
  | Some _ | None -> ()

let lex_number st =
  let start = st.off in
  let pos = current_pos st in
  let consume_digits () =
    while (match peek st with Some c -> is_digit c | None -> false) do
      advance st
    done
  in
  consume_digits ();
  let is_float = ref false in
  (* A '.' starts a fraction only if followed by a digit; this keeps
     future field-access syntax available. *)
  (match (peek st, peek2 st) with
  | Some '.', Some c when is_digit c ->
      is_float := true;
      advance st;
      consume_digits ()
  | _ -> ());
  (match peek st with
  | Some ('e' | 'E') ->
      is_float := true;
      advance st;
      (match peek st with Some ('+' | '-') -> advance st | _ -> ());
      consume_digits ()
  | _ -> ());
  let text = String.sub st.src start (st.off - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> FLOAT f
    | None -> raise (Lex_error (Printf.sprintf "bad float literal %S" text, pos))
  else
    match int_of_string_opt text with
    | Some n -> INT n
    | None -> raise (Lex_error (Printf.sprintf "bad int literal %S" text, pos))

let lex_string st =
  let pos = current_pos st in
  advance st;
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> raise (Lex_error ("unterminated string", pos))
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some 'n' ->
            Buffer.add_char buf '\n';
            advance st;
            go ()
        | Some 't' ->
            Buffer.add_char buf '\t';
            advance st;
            go ()
        | Some c ->
            Buffer.add_char buf c;
            advance st;
            go ()
        | None -> raise (Lex_error ("unterminated string escape", pos)))
    | Some c ->
        Buffer.add_char buf c;
        advance st;
        go ()
  in
  go ();
  STRING (Buffer.contents buf)

let lex_ident st =
  let start = st.off in
  while (match peek st with Some c -> is_ident_char c | None -> false) do
    advance st
  done;
  let text = String.sub st.src start (st.off - start) in
  match keyword_of_ident text with Some kw -> kw | None -> IDENT text

let lex_at st =
  let pos = current_pos st in
  advance st;
  let start = st.off in
  while (match peek st with Some c -> is_ident_char c | None -> false) do
    advance st
  done;
  let text = String.sub st.src start (st.off - start) in
  match text with
  | "parallel_for" -> KW_PARALLEL_FOR
  | other -> raise (Lex_error (Printf.sprintf "unknown macro @%s" other, pos))

let next_token st =
  skip_spaces_and_comments st;
  let pos = current_pos st in
  match peek st with
  | None -> { tok = EOF; pos }
  | Some c ->
      let simple tok =
        advance st;
        { tok; pos }
      in
      let two_char next one two =
        advance st;
        if peek st = Some next then (
          advance st;
          { tok = two; pos })
        else { tok = one; pos }
      in
      if c = '\n' then simple NEWLINE
      else if is_digit c then { tok = lex_number st; pos }
      else if c = '"' then { tok = lex_string st; pos }
      else if is_ident_start c then { tok = lex_ident st; pos }
      else if c = '@' then { tok = lex_at st; pos }
      else
        match c with
        | '+' -> two_char '=' PLUS PLUS_EQ
        | '-' -> two_char '=' MINUS MINUS_EQ
        | '*' -> two_char '=' STAR STAR_EQ
        | '/' -> two_char '=' SLASH SLASH_EQ
        | '%' -> simple PERCENT
        | '^' -> simple CARET
        | '=' -> two_char '=' EQ EQEQ
        | '!' -> two_char '=' BANG NE
        | '<' -> two_char '=' LT LE
        | '>' -> two_char '=' GT GE
        | '&' ->
            advance st;
            if peek st = Some '&' then (
              advance st;
              { tok = ANDAND; pos })
            else raise (Lex_error ("expected '&&'", pos))
        | '|' ->
            advance st;
            if peek st = Some '|' then (
              advance st;
              { tok = OROR; pos })
            else raise (Lex_error ("expected '||'", pos))
        | '(' -> simple LPAREN
        | ')' -> simple RPAREN
        | '[' -> simple LBRACKET
        | ']' -> simple RBRACKET
        | ',' -> simple COMMA
        | ':' -> simple COLON
        | '.' ->
            (* Julia broadcast assignment [.=] and broadcast ops [.*], [.-]
               behave element-wise; OrionScript treats them as their plain
               counterparts since vectors are values. *)
            advance st;
            (match peek st with
            | Some '=' ->
                advance st;
                { tok = EQ; pos }
            | Some '*' ->
                advance st;
                { tok = STAR; pos }
            | Some '+' ->
                advance st;
                { tok = PLUS; pos }
            | Some '-' ->
                advance st;
                { tok = MINUS; pos }
            | Some '/' ->
                advance st;
                { tok = SLASH; pos }
            | _ -> raise (Lex_error ("unexpected '.'", pos)))
        | other ->
            raise
              (Lex_error (Printf.sprintf "unexpected character %C" other, pos))

(** Tokenize a whole source string. The resulting list always ends with
    [EOF]. Raises {!Lex_error} on malformed input. *)
let tokenize src =
  let st = { src; off = 0; line = 1; col = 1 } in
  let rec go acc =
    let t = next_token st in
    if t.tok = EOF then List.rev (t :: acc) else go (t :: acc)
  in
  go []
