(** Lexer for OrionScript. *)

type token =
  | INT of int
  | FLOAT of float
  | STRING of string
  | IDENT of string
  | KW_FOR
  | KW_IN
  | KW_END
  | KW_IF
  | KW_ELSE
  | KW_ELSEIF
  | KW_WHILE
  | KW_TRUE
  | KW_FALSE
  | KW_BREAK
  | KW_CONTINUE
  | KW_PARALLEL_FOR
  | KW_ORDERED
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | CARET
  | EQ
  | PLUS_EQ
  | MINUS_EQ
  | STAR_EQ
  | SLASH_EQ
  | EQEQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | ANDAND
  | OROR
  | BANG
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | COMMA
  | COLON
  | NEWLINE
  | EOF

type pos = { line : int; col : int }

type located = { tok : token; pos : pos }

exception Lex_error of string * pos

(** Human-readable token name (for error messages). *)
val token_name : token -> string

(** Tokenize a source string; the result always ends with [EOF].
    Comments ([#] to end of line) are skipped; Julia's broadcast
    operators ([.=], [.*], ...) lex as their plain counterparts.
    @raise Lex_error on malformed input. *)
val tokenize : string -> located list
