(** Pretty-printer for OrionScript.  The output re-parses to an equal
    AST, so it doubles as the formatter for generated programs (e.g.
    synthesized prefetch slices). *)

val binop_str : Ast.binop -> string

val pp_expr : ?prec:int -> Format.formatter -> Ast.expr -> unit
val pp_subscript : Format.formatter -> Ast.subscript -> unit
val pp_lvalue : Format.formatter -> Ast.lvalue -> unit
val pp_stmt : indent:int -> Format.formatter -> Ast.stmt -> unit
val pp_block : indent:int -> Format.formatter -> Ast.block -> unit
val pp_program : Format.formatter -> Ast.program -> unit

val expr_to_string : Ast.expr -> string
val stmt_to_string : Ast.stmt -> string
val program_to_string : Ast.program -> string
