(** Recursive-descent parser for OrionScript. *)

exception Parse_error of string * Lexer.pos

(** Parse a whole program (statements separated by newlines, blocks
    closed by [end]).
    @raise Parse_error or {!Lexer.Lex_error} on malformed input. *)
val parse_program : string -> Ast.program

(** Parse a single expression (no trailing tokens allowed). *)
val parse_expression : string -> Ast.expr
