lib/lang/lexer.pp.ml: Buffer List Printf String
