lib/lang/check.pp.mli: Ast
