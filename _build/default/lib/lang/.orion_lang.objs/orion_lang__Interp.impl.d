lib/lang/interp.pp.ml: Array Ast Float Hashtbl Int64 List Printf String Value
