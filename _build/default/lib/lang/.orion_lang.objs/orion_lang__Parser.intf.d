lib/lang/parser.pp.mli: Ast Lexer
