lib/lang/value.pp.ml: Float Fmt Printf
