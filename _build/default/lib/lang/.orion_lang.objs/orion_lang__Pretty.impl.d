lib/lang/pretty.pp.ml: Ast Float Fmt List String
