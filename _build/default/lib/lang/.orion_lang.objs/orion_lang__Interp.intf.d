lib/lang/interp.pp.mli: Ast Hashtbl Value
