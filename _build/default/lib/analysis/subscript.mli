(** Abstract subscripts — the paper's 3-tuple [(dim_idx, const, stype)]
    (§4.2).  Dependence is captured exactly only for "one loop index
    variable plus or minus a constant"; everything else is conservative. *)

type t =
  | Loop_index of { dim : int; offset : int }
      (** [key\[dim+1\] + offset], 0-based iteration-space dimension *)
  | Const of int  (** a compile-time constant position (0-based) *)
  | Range_all  (** the whole dimension, [:] *)
  | Unknown  (** may take any value within bounds *)

val pp : Format.formatter -> t -> unit
val show : t -> string
val equal : t -> t -> bool

(** Classification context: the loop's key variable and the names whose
    values are only known at run time. *)
type ctx = { key_var : string; runtime_vars : string list }

val is_runtime : ctx -> string -> bool

(** Classify one AST subscript against the context. *)
val classify : ctx -> Orion_lang.Ast.subscript -> t

(** Is the subscript expression statically determined (no runtime-
    tainted variables)? *)
val expr_is_static : ctx -> Orion_lang.Ast.subscript -> bool

val to_string : t -> string
