(** DistArray reference extraction from a parallel for-loop body (the
    "Statically analyze the loop code" step of paper Fig. 6). *)

type ref_info = {
  array : string;
  subs : Subscript.t array;
  is_write : bool;
  all_static : bool;
      (** no subscript depends on runtime values or DistArray reads *)
}

type loop_info = {
  iter_space : string;
  key_var : string;
  value_var : string;
  ordered : bool;
  ndims : int;
  refs : ref_info list;
  inherited : string list;  (** driver variables captured by the body *)
  runtime_vars : string list;  (** values derived from the loop value
                                   variable or DistArray reads *)
  buffered_arrays : string list;
      (** arrays written through DistArray Buffers (writes exempt) *)
}

val ref_to_string : ref_info -> string

(** Fixpoint taint analysis: variables whose value may depend on
    [seeds] or on any DistArray read. *)
val compute_tainted :
  dist_vars:string list -> seeds:string list -> Orion_lang.Ast.block -> string list

val compute_runtime_vars :
  dist_vars:string list -> value_var:string -> Orion_lang.Ast.block -> string list

exception Not_a_parallel_loop of string

(** Analyze one [@parallel_for] statement.
    @raise Not_a_parallel_loop if [stmt] is not a parallel each-loop. *)
val analyze_loop :
  dist_vars:string list ->
  buffered_arrays:string list ->
  iter_space_ndims:int ->
  Orion_lang.Ast.stmt ->
  loop_info

(** Every [@parallel_for] statement in the program, in order. *)
val find_parallel_loops : Orion_lang.Ast.program -> Orion_lang.Ast.stmt list
