(** Unimodular loop transformations (paper §4.3; Wolf & Lam): find an
    integer matrix with determinant ±1 whose application makes every
    dependence carried by the outermost transformed loop. *)

type matrix = int array array

val identity : int -> matrix
val interchange : int -> int -> int -> matrix
val mat_mul : matrix -> matrix -> matrix
val mat_vec : matrix -> int array -> int array
val determinant : matrix -> int

(** Integer inverse of a unimodular matrix (via the adjugate). *)
val inverse : matrix -> matrix

val is_unimodular : matrix -> bool
val matrix_to_string : matrix -> string

val gcd : int -> int -> int
val gcd_list : int list -> int

(** [egcd a b] returns [(g, x, y)] with [a*x + b*y = g], [g >= 0]. *)
val egcd : int -> int -> int * int * int

(** Extend a primitive integer vector (gcd 1) to a unimodular matrix
    with that first row. *)
val complete_to_unimodular : int array -> matrix

(** Soundly transform a dependence vector (interval arithmetic over the
    extended distances). *)
val transform_dvec : matrix -> Depvec.t -> Depvec.t

(** Does this row make every vector's transformed first component
    certainly positive? *)
val row_carries : int array -> Depvec.t -> bool

(** Search for a transformation: identity, then interchanges, then the
    wavefront hyperplane built from powers of [1 + max |distance|]
    (guaranteed for lexicographically positive finite/[Pos_inf]
    vectors).  [None] if not applicable. *)
val find_transform : ndims:int -> Depvec.t list -> matrix option
