(** Dependence vectors (paper §4.2): per-dimension iteration distances,
    with the paper's infinities ([Any] = any integer, [Pos_inf] /
    [Neg_inf] = any strictly positive / negative integer). *)

type elt = Fin of int | Pos_inf | Neg_inf | Any

val equal_elt : elt -> elt -> bool
val pp_elt : Format.formatter -> elt -> unit
val show_elt : elt -> string

type t = elt array

val equal : t -> t -> bool
val elt_to_string : elt -> string
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val is_zero_elt : elt -> bool
val neg_elt : elt -> elt
val neg : t -> t

(** Sign classification for lexicographic ordering. *)
val elt_sign : elt -> [ `Pos | `Neg | `Zero | `Unknown ]

val lex_status : t -> [ `Positive | `Negative | `Zero ]

(** Correct a raw distance vector to be lexicographically positive
    (Alg. 2's final step); [None] for the all-zero vector (not
    loop-carried). *)
val correct_positive : t -> t option

val is_all_zero : t -> bool

(** Dimensions [i] with every vector's distance exactly 0 at [i]:
    1D-parallelizable (paper §4.3). *)
val candidate_1d_dims : ndims:int -> t list -> int list

(** Dimension pairs [(i, j)] such that every vector is 0 at [i] or at
    [j]: iterations differing in both dimensions are independent (2D
    parallelization, §3.2 case 2). *)
val candidate_2d_pairs : ndims:int -> t list -> (int * int) list

(** Unimodular transformation applies only to numbers or positive
    infinity (§4.3). *)
val unimodular_applicable : t list -> bool

(** Conservative lower bound ([Pos_inf] counts as ≥ 1); [None] if
    unbounded below. *)
val elt_lower_bound : elt -> int option

(** Largest finite |distance| across the vectors (picks skew factors). *)
val max_finite_magnitude : t list -> int
