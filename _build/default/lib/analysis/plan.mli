(** Parallelization strategy decision and DistArray placement
    (paper §4.3–4.4). *)

type strategy =
  | One_d of { space_dim : int }
  | Two_d of { space_dim : int; time_dim : int }
  | Two_d_unimodular of {
      matrix : Unimodular.matrix;
      inverse : Unimodular.matrix;
      space_dim : int;  (** in the transformed space *)
      time_dim : int;
    }
  | Data_parallel
      (** no dependence-preserving partitioning; conflicting writes
          must go through DistArray Buffers *)

type placement =
  | Local_partitioned of { array_dim : int }
      (** aligned with the space dimension: all accesses local *)
  | Rotated of { array_dim : int }
      (** aligned with the time dimension: partitions rotate *)
  | Replicated  (** read-only: broadcast once *)
  | Server  (** random access served by server processes *)

type t = {
  strategy : strategy;
  ordered : bool;
  placements : (string * placement) list;
  dep_vectors : Depvec.t list;
  per_array_deps : (string * Depvec.t list) list;
  prefetch_arrays : string list;
      (** server arrays with runtime-dependent subscripts — candidates
          for synthesized bulk prefetching *)
  requires_buffers : string list;
      (** on a [Data_parallel] fallback: arrays whose statically
          uncapturable writes must be buffered *)
  estimated_comm_cost : float;
  loop : Refs.loop_info;
}

val strategy_to_string : strategy -> string
val placement_to_string : placement -> string

(** Per-array access summaries feeding the placement decision. *)
type array_summary = {
  name : string;
  keyed_by : (int * int) list;  (** (iteration dim, array position) *)
  read_only : bool;
  all_static : bool;
  size : float;
}

val summarize_arrays :
  Refs.loop_info -> array_dims:(string -> int array option) -> array_summary list

(** Decide the parallelization: 1D and 2D candidates are costed by the
    communication heuristic (rotate the smaller array, serve what
    cannot be partitioned); otherwise try a unimodular transformation;
    otherwise fall back to data parallelism. *)
val decide :
  Refs.loop_info ->
  array_dims:(string -> int array option) ->
  iter_count:float ->
  t

(** Human-readable report (the paper's Fig. 6 panel). *)
val explain : Format.formatter -> t -> unit

val explain_to_string : t -> string
