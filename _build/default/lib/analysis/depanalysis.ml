(** Computing dependence vectors — the paper's Algorithm 2.

    For each referenced DistArray, every unique pair of static references
    (including a write paired with itself) is tested:
    - read/read pairs carry no dependence;
    - write/write pairs are skipped when the loop is unordered;
    - otherwise a distance vector over the iteration space is built by
      refining an all-∞ vector with the constraints implied by matching
      subscript positions, or the pair is proven independent. *)

type result = {
  per_array : (string * Depvec.t list) list;
      (** dependence vectors attributable to each DistArray *)
  all : Depvec.t list;  (** deduplicated union *)
}

let dedup (dvecs : Depvec.t list) =
  List.fold_left
    (fun acc d -> if List.exists (Depvec.equal d) acc then acc else d :: acc)
    [] dvecs
  |> List.rev

(* Dependence test for one pair of references; [None] = independent. *)
let pair_dvec ~ndims (a : Refs.ref_info) (b : Refs.ref_info) :
    Depvec.t option =
  let dvec = Array.make ndims Depvec.Any in
  let independent = ref false in
  let positions = min (Array.length a.subs) (Array.length b.subs) in
  for p = 0 to positions - 1 do
    if not !independent then
      match (a.subs.(p), b.subs.(p)) with
      | ( Subscript.Loop_index { dim = da; offset = ca },
          Subscript.Loop_index { dim = db; offset = cb } ) ->
          if da = db then (
            let dist = ca - cb in
            match dvec.(da) with
            | Depvec.Any -> dvec.(da) <- Depvec.Fin dist
            | Depvec.Fin prev when prev <> dist -> independent := true
            | Depvec.Fin _ -> ()
            | Depvec.Pos_inf | Depvec.Neg_inf ->
                (* cannot arise here: refinement only writes Fin *)
                ())
          else
            (* different loop index variables at the same position: the
               subscripts match only when those index values coincide —
               no distance constraint can be derived (paper: continue) *)
            ()
      | Subscript.Const ca, Subscript.Const cb ->
          if ca <> cb then independent := true
      | Subscript.Const _, Subscript.Loop_index _
      | Subscript.Loop_index _, Subscript.Const _
      | (Subscript.Range_all | Subscript.Unknown), _
      | _, (Subscript.Range_all | Subscript.Unknown) ->
          (* positions may always coincide: no refinement *)
          ()
  done;
  if !independent then None
  else
    (* drop the self-dependence of an iteration on itself: an exact
       all-zero vector means "same iteration" *)
    match Depvec.correct_positive dvec with
    | None -> None
    | Some d -> Some d

(** All unique pairs of [refs], including a reference paired with
    itself when it is a write (two distinct iterations can both execute
    the same static write). *)
let reference_pairs refs =
  let arr = Array.of_list refs in
  let n = Array.length arr in
  let pairs = ref [] in
  for i = 0 to n - 1 do
    for j = i to n - 1 do
      if i <> j || arr.(i).Refs.is_write then
        pairs := (arr.(i), arr.(j)) :: !pairs
    done
  done;
  List.rev !pairs

let array_dvecs ~ndims ~unordered refs =
  reference_pairs refs
  |> List.filter_map (fun ((a : Refs.ref_info), (b : Refs.ref_info)) ->
         if (not a.is_write) && not b.is_write then None
         else if unordered && a.is_write && b.is_write then None
         else pair_dvec ~ndims a b)
  |> dedup

(** Run Algorithm 2 over a whole loop.  Writes to buffered DistArrays
    are exempt from analysis (paper §3.3): such arrays contribute only
    their read references. *)
let analyze (info : Refs.loop_info) : result =
  let ndims = info.ndims in
  let unordered = not info.ordered in
  let arrays =
    List.map (fun (r : Refs.ref_info) -> r.array) info.refs
    |> List.sort_uniq String.compare
  in
  let per_array =
    List.map
      (fun name ->
        let refs =
          List.filter (fun (r : Refs.ref_info) -> r.array = name) info.refs
        in
        let refs =
          if List.mem name info.buffered_arrays then
            List.filter (fun (r : Refs.ref_info) -> not r.is_write) refs
          else refs
        in
        (name, array_dvecs ~ndims ~unordered refs))
      arrays
  in
  let all = dedup (List.concat_map snd per_array) in
  { per_array; all }
