(** Abstract subscripts — the paper's 3-tuple [(dim_idx, const, stype)]
    (§4.2).

    Orion accurately captures dependence only for subscripts of the form
    "one loop index variable plus or minus a constant"; everything else
    is conservatively treated as possibly taking any value within the
    DistArray's bounds. *)

open Orion_lang

(** One abstract subscript position of a DistArray reference. *)
type t =
  | Loop_index of { dim : int; offset : int }
      (** [key\[dim+1\] + offset] — [dim] is the 0-based iteration-space
          dimension of the loop index variable *)
  | Const of int  (** a compile-time constant position (0-based) *)
  | Range_all  (** the whole dimension, [:] *)
  | Unknown  (** anything else: may take any value within bounds *)
[@@deriving show { with_path = false }, eq]

(** Classification context: the name of the loop's key variable, and the
    names whose values are only known at run time (the loop's value
    variable plus anything derived from it or from DistArray reads). *)
type ctx = { key_var : string; runtime_vars : string list }

let is_runtime ctx v = List.mem v ctx.runtime_vars

(* Recognise [key[i]], [key[i] + c], [key[i] - c], [c + key[i]] and plain
   integer constants.  Surface subscripts are 1-based; the abstract form
   is 0-based. *)
let classify_point ctx (e : Ast.expr) : t =
  let key_dim = function
    | Ast.Index (Var k, [ Sub_expr (Int_lit d) ]) when k = ctx.key_var ->
        Some (d - 1)
    | _ -> None
  in
  match e with
  | Ast.Int_lit c -> Const (c - 1)
  | _ -> (
      match key_dim e with
      | Some dim -> Loop_index { dim; offset = 0 }
      | None -> (
          match e with
          | Ast.Binop (Add, a, Int_lit c) -> (
              match key_dim a with
              | Some dim -> Loop_index { dim; offset = c }
              | None -> Unknown)
          | Ast.Binop (Add, Int_lit c, b) -> (
              match key_dim b with
              | Some dim -> Loop_index { dim; offset = c }
              | None -> Unknown)
          | Ast.Binop (Sub, a, Int_lit c) -> (
              match key_dim a with
              | Some dim -> Loop_index { dim; offset = -c }
              | None -> Unknown)
          | _ -> Unknown))

(** Classify one AST subscript.  [Sub_range] with constant bounds could
    in principle be analysed as a constant interval; Orion treats any
    non-full range conservatively, and so do we. *)
let classify ctx (s : Ast.subscript) : t =
  match s with
  | Ast.Sub_all -> Range_all
  | Ast.Sub_range (_, _) -> Unknown
  | Ast.Sub_expr e -> classify_point ctx e

(** Does this abstract subscript depend on runtime values (so that the
    reference cannot be captured statically)?  Used to decide whether a
    loop must fall back to DistArray buffers. *)
let expr_is_static ctx (s : Ast.subscript) =
  match s with
  | Ast.Sub_all -> true
  | Ast.Sub_range (lo, hi) ->
      let static e =
        List.for_all
          (fun v -> (not (is_runtime ctx v)) || v = ctx.key_var)
          (Ast.expr_vars e)
      in
      static lo && static hi
  | Ast.Sub_expr e ->
      List.for_all
        (fun v -> (not (is_runtime ctx v)) || v = ctx.key_var)
        (Ast.expr_vars e)

let to_string = function
  | Loop_index { dim; offset } ->
      if offset = 0 then Printf.sprintf "key[%d]" (dim + 1)
      else if offset > 0 then Printf.sprintf "key[%d]+%d" (dim + 1) offset
      else Printf.sprintf "key[%d]-%d" (dim + 1) (-offset)
  | Const c -> string_of_int (c + 1)
  | Range_all -> ":"
  | Unknown -> "?"
