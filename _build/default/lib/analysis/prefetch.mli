(** Bulk-prefetch synthesis (paper §4.4): a backward slice of the loop
    body that records — rather than reads — the subscripts of
    server-hosted DistArrays, with proper control flow and ordering. *)

(** Names of the host builtins the generated program calls. *)
val record_fn : string  (** [__record(name, s1, ..., sn)] per read *)

val all_fn : string  (** [__all()] marks a whole-dimension subscript *)

val range_fn : string  (** [__range(lo, hi)] marks a range subscript *)

type stats = { mutable recorded : int; mutable skipped : int }

(** Synthesize the prefetch program for [body].  [targets] are the
    arrays whose reads to record; reads whose subscripts depend on
    values read from any of [dist_vars] are skipped (the runtime falls
    back to on-demand fetches); branches on DistArray-dependent
    conditions are over-approximated (both sides recorded). *)
val synthesize :
  dist_vars:string list ->
  targets:string list ->
  Orion_lang.Ast.block ->
  Orion_lang.Ast.block * stats

val to_string : Orion_lang.Ast.block -> string
