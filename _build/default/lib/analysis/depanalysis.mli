(** Computing dependence vectors — the paper's Algorithm 2. *)

type result = {
  per_array : (string * Depvec.t list) list;
  all : Depvec.t list;  (** deduplicated union *)
}

(** Deduplicate a vector list (order-preserving). *)
val dedup : Depvec.t list -> Depvec.t list

(** Dependence test for one pair of references; [None] = independent
    or not loop-carried. *)
val pair_dvec : ndims:int -> Refs.ref_info -> Refs.ref_info -> Depvec.t option

(** Run Algorithm 2 over a loop: read/read pairs skipped, write/write
    pairs skipped for unordered loops, buffered arrays contribute only
    their reads. *)
val analyze : Refs.loop_info -> result
