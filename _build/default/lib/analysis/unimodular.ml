(** Unimodular loop transformations (paper §4.3; Wolf & Lam).

    When neither 1D nor 2D parallelization applies and the dependence
    vectors contain only numbers or positive infinity, Orion searches
    for a unimodular matrix [T] such that every transformed dependence
    vector is carried by the outermost loop (first component certainly
    positive).  The inner transformed loops are then free of
    dependences within one outer iteration and can be partitioned
    across workers. *)

(* ------------------------------------------------------------------ *)
(* Integer matrices                                                    *)
(* ------------------------------------------------------------------ *)

type matrix = int array array

let identity n : matrix =
  Array.init n (fun i -> Array.init n (fun j -> if i = j then 1 else 0))

let interchange n i j : matrix =
  let m = identity n in
  m.(i).(i) <- 0;
  m.(j).(j) <- 0;
  m.(i).(j) <- 1;
  m.(j).(i) <- 1;
  m

let mat_mul (a : matrix) (b : matrix) : matrix =
  let n = Array.length a and p = Array.length b.(0) in
  let k = Array.length b in
  Array.init n (fun i ->
      Array.init p (fun j ->
          let acc = ref 0 in
          for l = 0 to k - 1 do
            acc := !acc + (a.(i).(l) * b.(l).(j))
          done;
          !acc))

let mat_vec (m : matrix) (v : int array) : int array =
  Array.init (Array.length m) (fun i ->
      let acc = ref 0 in
      Array.iteri (fun j x -> acc := !acc + (m.(i).(j) * x)) v;
      !acc)

(* Cofactor-expansion determinant; matrices here are tiny (loop depth). *)
let rec determinant (m : matrix) =
  let n = Array.length m in
  if n = 0 then 1
  else if n = 1 then m.(0).(0)
  else if n = 2 then (m.(0).(0) * m.(1).(1)) - (m.(0).(1) * m.(1).(0))
  else
    let minor col =
      Array.init (n - 1) (fun i ->
          Array.init (n - 1) (fun j ->
              m.(i + 1).(if j < col then j else j + 1)))
    in
    let acc = ref 0 in
    for col = 0 to n - 1 do
      let sign = if col mod 2 = 0 then 1 else -1 in
      acc := !acc + (sign * m.(0).(col) * determinant (minor col))
    done;
    !acc

(** Inverse of a unimodular matrix (integer entries, via the adjugate;
    valid because [det = ±1]). *)
let inverse (m : matrix) : matrix =
  let n = Array.length m in
  let det = determinant m in
  assert (abs det = 1);
  let minor i j =
    Array.init (n - 1) (fun r ->
        Array.init (n - 1) (fun c ->
            m.(if r < i then r else r + 1).(if c < j then c else c + 1)))
  in
  Array.init n (fun i ->
      Array.init n (fun j ->
          let sign = if (i + j) mod 2 = 0 then 1 else -1 in
          sign * determinant (minor j i) * det))

let is_unimodular (m : matrix) = abs (determinant m) = 1

let matrix_to_string (m : matrix) =
  "["
  ^ String.concat "; "
      (Array.to_list
         (Array.map
            (fun row ->
              "["
              ^ String.concat ", "
                  (Array.to_list (Array.map string_of_int row))
              ^ "]")
            m))
  ^ "]"

(* ------------------------------------------------------------------ *)
(* Interval arithmetic over extended dependence distances              *)
(* ------------------------------------------------------------------ *)

(* A dependence element denotes a set of integers; linear combinations
   are soundly approximated by interval arithmetic with infinite
   endpoints. *)

type bound = Neg_infinite | Finite of int | Pos_infinite

type interval = { lo : bound; hi : bound }

let interval_of_elt = function
  | Depvec.Fin v -> { lo = Finite v; hi = Finite v }
  | Depvec.Pos_inf -> { lo = Finite 1; hi = Pos_infinite }
  | Depvec.Neg_inf -> { lo = Neg_infinite; hi = Finite (-1) }
  | Depvec.Any -> { lo = Neg_infinite; hi = Pos_infinite }

let bound_add a b =
  match (a, b) with
  | Neg_infinite, _ | _, Neg_infinite -> Neg_infinite
  | Pos_infinite, _ | _, Pos_infinite -> Pos_infinite
  | Finite x, Finite y -> Finite (x + y)

let bound_scale c = function
  | Finite v -> Finite (c * v)
  | Neg_infinite -> if c > 0 then Neg_infinite else Pos_infinite
  | Pos_infinite -> if c > 0 then Pos_infinite else Neg_infinite

let interval_scale c itv =
  if c = 0 then { lo = Finite 0; hi = Finite 0 }
  else if c > 0 then { lo = bound_scale c itv.lo; hi = bound_scale c itv.hi }
  else { lo = bound_scale c itv.hi; hi = bound_scale c itv.lo }

let interval_add a b = { lo = bound_add a.lo b.lo; hi = bound_add a.hi b.hi }

let elt_of_interval itv =
  match (itv.lo, itv.hi) with
  | Finite l, Finite h when l = h -> Depvec.Fin l
  | Finite l, _ when l >= 1 -> Depvec.Pos_inf
  | _, Finite h when h <= -1 -> Depvec.Neg_inf
  | _ -> Depvec.Any

(** Apply a transformation matrix to a dependence vector, soundly. *)
let transform_dvec (t : matrix) (d : Depvec.t) : Depvec.t =
  let n = Array.length t in
  Array.init n (fun i ->
      let acc = ref { lo = Finite 0; hi = Finite 0 } in
      Array.iteri
        (fun j elt ->
          acc := interval_add !acc (interval_scale t.(i).(j) (interval_of_elt elt)))
        d;
      elt_of_interval !acc)

(* Is the first component of the transformed vector certainly >= 1? *)
let row_carries (row : int array) (d : Depvec.t) =
  let acc = ref { lo = Finite 0; hi = Finite 0 } in
  Array.iteri
    (fun j elt ->
      acc := interval_add !acc (interval_scale row.(j) (interval_of_elt elt)))
    d;
  match !acc.lo with Finite l -> l >= 1 | Pos_infinite -> true | Neg_infinite -> false

(* ------------------------------------------------------------------ *)
(* Completing a primitive row to a unimodular matrix                   *)
(* ------------------------------------------------------------------ *)

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

let gcd_list l = List.fold_left gcd 0 l

(* extended gcd: returns (g, x, y) with a*x + b*y = g, g >= 0 *)
let rec egcd a b =
  if b = 0 then if a >= 0 then (a, 1, 0) else (-a, -1, 0)
  else
    let g, x, y = egcd b (a mod b) in
    (g, y, x - (a / b * y))

(** Extend a primitive integer vector (gcd of entries = 1) to a
    unimodular matrix whose first row is that vector.  Standard
    inductive construction; see e.g. Newman, "Integral Matrices". *)
let rec complete_to_unimodular (w : int array) : matrix =
  let n = Array.length w in
  assert (n >= 1);
  assert (gcd_list (Array.to_list w) = 1);
  if n = 1 then [| [| w.(0) |] |]
  else
    let tail = Array.sub w 1 (n - 1) in
    let d = gcd_list (Array.to_list tail) in
    if d = 0 then (
      (* all trailing entries zero: w0 = ±1 *)
      let m = identity n in
      m.(0).(0) <- w.(0);
      m)
    else
      let u = Array.map (fun v -> v / d) tail in
      let sub = complete_to_unimodular u in
      let g, x, y = egcd w.(0) d in
      assert (g = 1);
      let m = Array.make_matrix n n 0 in
      (* row 0 = w *)
      Array.blit w 0 m.(0) 0 n;
      (* row 1 = (-y, x*u) *)
      m.(1).(0) <- -y;
      Array.iteri (fun j v -> m.(1).(j + 1) <- x * v) u;
      (* rows 2.. = (0, rows 1.. of sub) *)
      for i = 2 to n - 1 do
        for j = 1 to n - 1 do
          m.(i).(j) <- sub.(i - 1).(j - 1)
        done
      done;
      m

(* ------------------------------------------------------------------ *)
(* Search                                                              *)
(* ------------------------------------------------------------------ *)

(** Find a unimodular [T] such that every vector in [dvecs], transformed
    by [T], has a certainly-positive first component (all dependences
    carried by the outermost transformed loop).  Tries, in order: the
    identity, dimension interchanges, and a hyperplane (wavefront) row
    built from powers of [B = 1 + max |finite distance|], which is
    guaranteed to work for lexicographically positive vectors whose
    entries are numbers or positive infinity. *)
let find_transform ~ndims (dvecs : Depvec.t list) : matrix option =
  if not (Depvec.unimodular_applicable dvecs) then None
  else
    let carries_all (t : matrix) =
      List.for_all (fun d -> row_carries t.(0) d) dvecs
    in
    let id = identity ndims in
    if carries_all id then Some id
    else
      let interchanged =
        List.find_map
          (fun j ->
            let t = interchange ndims 0 j in
            if carries_all t then Some t else None)
          (List.init (ndims - 1) (fun k -> k + 1))
      in
      match interchanged with
      | Some t -> Some t
      | None ->
          let b = Depvec.max_finite_magnitude dvecs + 1 in
          let w =
            Array.init ndims (fun i ->
                int_of_float (float_of_int b ** float_of_int (ndims - 1 - i)))
          in
          let g = gcd_list (Array.to_list w) in
          let w = if g > 1 then Array.map (fun v -> v / g) w else w in
          let t = complete_to_unimodular w in
          if carries_all t then Some t else None
