lib/analysis/subscript.pp.mli: Format Orion_lang
