lib/analysis/unimodular.pp.mli: Depvec
