lib/analysis/plan.pp.mli: Depvec Format Refs Unimodular
