lib/analysis/subscript.pp.ml: Ast List Orion_lang Ppx_deriving_runtime Printf
