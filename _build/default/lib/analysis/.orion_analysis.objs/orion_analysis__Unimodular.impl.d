lib/analysis/unimodular.pp.ml: Array Depvec List String
