lib/analysis/refs.pp.ml: Array Ast List Orion_lang Printf String Subscript
