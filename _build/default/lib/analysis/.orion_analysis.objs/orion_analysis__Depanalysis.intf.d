lib/analysis/depanalysis.pp.mli: Depvec Refs
