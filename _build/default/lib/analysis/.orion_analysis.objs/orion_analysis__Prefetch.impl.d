lib/analysis/prefetch.pp.ml: Ast List Orion_lang Pretty Refs
