lib/analysis/depanalysis.pp.ml: Array Depvec List Refs String Subscript
