lib/analysis/plan.pp.ml: Array Depanalysis Depvec Fmt Fun Int List Option Printf Refs String Subscript Unimodular
