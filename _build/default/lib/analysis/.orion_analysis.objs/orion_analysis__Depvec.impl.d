lib/analysis/depvec.pp.ml: Array Fmt Fun List Ppx_deriving_runtime String
