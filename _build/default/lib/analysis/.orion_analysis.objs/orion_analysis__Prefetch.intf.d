lib/analysis/prefetch.pp.mli: Orion_lang
