lib/analysis/refs.pp.mli: Orion_lang Subscript
