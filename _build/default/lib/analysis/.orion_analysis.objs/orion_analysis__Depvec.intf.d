lib/analysis/depvec.pp.mli: Format
