(** Dependence vectors (paper §4.2).

    An element is a distance along one iteration-space dimension.  The
    paper's infinities: [Any] (written ∞) means the distance may be any
    integer; [Pos_inf]/[Neg_inf] restrict it to strictly positive /
    strictly negative values.  [Fin d] is an exact distance. *)

type elt = Fin of int | Pos_inf | Neg_inf | Any
[@@deriving show { with_path = false }, eq]

type t = elt array

let equal (a : t) (b : t) =
  Array.length a = Array.length b
  && Array.for_all2 equal_elt a b

let elt_to_string = function
  | Fin d -> string_of_int d
  | Pos_inf -> "+inf"
  | Neg_inf -> "-inf"
  | Any -> "inf"

let to_string (d : t) =
  "(" ^ String.concat ", " (Array.to_list (Array.map elt_to_string d)) ^ ")"

let pp fmt d = Fmt.string fmt (to_string d)

let is_zero_elt = function Fin 0 -> true | Fin _ | Pos_inf | Neg_inf | Any -> false

(** Negate a distance: flips the direction of the dependence. *)
let neg_elt = function
  | Fin d -> Fin (-d)
  | Pos_inf -> Neg_inf
  | Neg_inf -> Pos_inf
  | Any -> Any

let neg (d : t) : t = Array.map neg_elt d

(** Sign classification used for lexicographic ordering.  [`Pos]/[`Neg]
    mean certainly positive / certainly negative; [`Zero] certainly
    zero; [`Unknown] could be either. *)
let elt_sign = function
  | Fin d when d > 0 -> `Pos
  | Fin d when d < 0 -> `Neg
  | Fin _ -> `Zero
  | Pos_inf -> `Pos
  | Neg_inf -> `Neg
  | Any -> `Unknown

(** A vector is lexicographically positive if its first element whose
    sign is determined and nonzero is positive, and no [`Unknown]
    appears before it (an unknown-direction element subsumes both
    orientations, so such a vector is canonical as-is and treated as
    positive). *)
let lex_status (d : t) =
  let n = Array.length d in
  let rec go i =
    if i >= n then `Zero
    else
      match elt_sign d.(i) with
      | `Zero -> go (i + 1)
      | `Pos -> `Positive
      | `Neg -> `Negative
      | `Unknown -> `Positive
  in
  go 0

(** Correct a raw distance vector to be lexicographically positive, as
    Alg. 2's last step requires.  Returns [None] for the all-zero vector
    (a self-dependence of an iteration on itself: not loop-carried). *)
let correct_positive (d : t) : t option =
  match lex_status d with
  | `Zero -> None
  | `Positive -> Some d
  | `Negative -> Some (neg d)

(** All elements exactly zero — i.e. both iterations are the same. *)
let is_all_zero (d : t) = Array.for_all is_zero_elt d

(** Candidate dimensions for 1D parallelization: dimensions [i] such
    that every vector has distance exactly 0 at [i] (paper §4.3). *)
let candidate_1d_dims ~ndims (dvecs : t list) =
  List.filter
    (fun i -> List.for_all (fun d -> is_zero_elt d.(i)) dvecs)
    (List.init ndims Fun.id)

(** Candidate dimension pairs [(i, j)] for 2D parallelization: for every
    vector, the distance is 0 at [i] or at [j], so iterations differing
    in both dimensions are independent (paper §3.2 case 2). *)
let candidate_2d_pairs ~ndims (dvecs : t list) =
  let dims = List.init ndims Fun.id in
  List.concat_map
    (fun i ->
      List.filter_map
        (fun j ->
          if
            i < j
            && List.for_all
                 (fun d -> is_zero_elt d.(i) || is_zero_elt d.(j))
                 dvecs
          then Some (i, j)
          else None)
        dims)
    dims

(** Unimodular transformation applies only when elements are numbers or
    positive infinity (paper §4.3). *)
let unimodular_applicable (dvecs : t list) =
  dvecs <> []
  && List.for_all
       (fun d ->
         Array.for_all
           (function Fin _ | Pos_inf -> true | Neg_inf | Any -> false)
           d)
       dvecs

(** Conservative lower bound of an element's value, treating [Pos_inf]
    as "at least 1".  Returns [None] when no finite lower bound exists. *)
let elt_lower_bound = function
  | Fin d -> Some d
  | Pos_inf -> Some 1
  | Neg_inf | Any -> None

(** Largest finite magnitude appearing in the vectors (used to choose
    skewing factors). *)
let max_finite_magnitude (dvecs : t list) =
  List.fold_left
    (fun acc d ->
      Array.fold_left
        (fun acc e -> match e with Fin v -> max acc (abs v) | _ -> acc)
        acc d)
    0 dvecs
