lib/runtime/executor.ml: Array Cluster Orion_dsm Orion_sim Schedule Unix
