lib/runtime/schedule.ml: Array Dist_array Fun Int64 List Orion_analysis Orion_dsm Partitioner
