lib/runtime/executor.mli: Orion_dsm Orion_sim Schedule
