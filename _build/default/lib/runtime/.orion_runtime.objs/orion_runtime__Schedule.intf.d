lib/runtime/schedule.mli: Orion_analysis Orion_dsm
