(* End-to-end tests for the unimodular-transformation path (paper §3.2
   case 3): a skewed stencil recurrence whose dependence vectors
   {(1,-1), (0,1)} admit neither 1D nor 2D partitioning. *)

open Orion_apps

let rows = 24
let cols = 18

let setup () =
  let session =
    Orion.create_session ~num_machines:2 ~workers_per_machine:2 ()
  in
  let grid = Stencil.make_grid ~rows ~cols in
  let model = Stencil.init_model ~rows ~cols () in
  Stencil.register_arrays session ~grid model;
  (session, grid, model)

let test_analysis_derives_unimodular () =
  let session, _, _ = setup () in
  match Orion.analyze_script session Stencil.script with
  | [ plan ] -> (
      Alcotest.(check bool) "ordered" true plan.Orion.Plan.ordered;
      (* the dependence vectors are (1,-1) and (0,1) *)
      let dvs =
        List.map Orion.Depvec.to_string plan.Orion.Plan.dep_vectors
        |> List.sort compare
      in
      Alcotest.(check (list string))
        "dvecs" [ "(0, 1)"; "(1, -1)" ] dvs;
      match plan.Orion.Plan.strategy with
      | Orion.Plan.Two_d_unimodular { matrix; _ } ->
          Alcotest.(check bool) "unimodular matrix" true
            (Orion.Unimodular.is_unimodular matrix);
          (* every dependence must be carried by the transformed outer
             dimension *)
          List.iter
            (fun d ->
              let d' = Orion.Unimodular.transform_dvec matrix d in
              match d'.(0) with
              | Orion.Depvec.Fin v when v >= 1 -> ()
              | Orion.Depvec.Pos_inf -> ()
              | e ->
                  Alcotest.fail
                    ("not carried: " ^ Orion.Depvec.elt_to_string e))
            plan.Orion.Plan.dep_vectors
      | s -> Alcotest.fail (Orion.Plan.strategy_to_string s))
  | _ -> Alcotest.fail "expected one loop"

let test_scheduled_equals_serial_bitwise () =
  (* the transformed schedule preserves the recurrence exactly: every
     iteration writes only its own cell, so the scheduled execution
     must be bit-for-bit equal to the serial lexicographic sweep *)
  let session, grid, model = setup () in
  let plan = List.hd (Orion.analyze_script session Stencil.script) in
  let compiled = Orion.compile session ~plan ~iter:grid () in
  ignore (Orion.execute session compiled ~body:(Stencil.body model) ());
  let reference = Stencil.init_model ~rows ~cols () in
  Stencil.run_serial reference grid;
  Alcotest.(check bool) "bitwise equal state" true
    (model.Stencil.s = reference.Stencil.s);
  (* and the recurrence actually propagated information *)
  Alcotest.(check bool) "nontrivial state" true
    (Stencil.fingerprint model > 0.01)

let test_interpreted_matches_native () =
  let session, grid, _ = setup () in
  ignore grid;
  let s_arr =
    Orion.Dist_array.fill_dense ~name:"S" ~dims:[| rows; cols |] 0.0
  in
  Orion.register session s_arr;
  let _env, stats = Orion.run_script session (Stencil.driver_script ~cols) in
  Alcotest.(check int) "one loop execution" 1 (List.length stats);
  let native = Stencil.init_model ~rows ~cols () in
  Stencil.run_serial native grid;
  (* the interpreted run wrote into the S DistArray *)
  let max_diff = ref 0.0 in
  Orion.Dist_array.iter
    (fun key v ->
      let expect = native.Stencil.s.((key.(0) * cols) + key.(1)) in
      max_diff := Float.max !max_diff (abs_float (v -. expect)))
    s_arr;
  Alcotest.(check bool)
    (Printf.sprintf "interpreted matches native (max diff %g)" !max_diff)
    true
    (!max_diff < 1e-12)

let test_unimodular_faster_than_serial_in_sim () =
  let session, grid, model = setup () in
  let plan = List.hd (Orion.analyze_script session Stencil.script) in
  let compiled = Orion.compile session ~plan ~iter:grid () in
  let stats =
    Orion.execute session compiled
      ~compute:(Orion.Executor.Per_entry 1e-4)
      ~body:(Stencil.body model) ()
  in
  (* with 4 workers and ~rows+cols wavefronts of ~rows cells each, the
     wavefront schedule must beat 1-worker time but not 4x (bubbles) *)
  let serial_time = float_of_int (rows * cols) *. 1e-4 in
  Alcotest.(check bool)
    (Printf.sprintf "wavefront %.4f < serial %.4f" stats.Orion.Executor.sim_time
       serial_time)
    true
    (stats.Orion.Executor.sim_time < serial_time)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "stencil"
    [
      ( "unimodular",
        [
          tc "analysis derives transform" `Quick test_analysis_derives_unimodular;
          tc "scheduled == serial (bitwise)" `Quick
            test_scheduled_equals_serial_bitwise;
          tc "interpreted matches native" `Quick test_interpreted_matches_native;
          tc "wavefront parallel speedup" `Quick
            test_unimodular_faster_than_serial_in_sim;
        ] );
    ]
