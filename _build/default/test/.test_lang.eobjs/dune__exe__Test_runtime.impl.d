test/test_runtime.ml: Alcotest Array Dist_array Executor Hashtbl List Option Orion_analysis Orion_data Orion_dsm Orion_runtime Orion_sim Printf QCheck QCheck_alcotest Schedule
