test/test_baselines.ml: Alcotest Array Bosen_lda Bosen_mf Float Lazy List Orion_baselines Orion_data Orion_lda Orion_mf Orion_sim Printf Slr_runner Strads_lda Strads_mf Tf_mf Trajectory
