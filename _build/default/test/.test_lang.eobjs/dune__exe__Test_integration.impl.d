test/test_integration.ml: Alcotest Array Check Dist_array Filename Float Interp List Orion Orion_apps Orion_data Plan Printf Sys Value
