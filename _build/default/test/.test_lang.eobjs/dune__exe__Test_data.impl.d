test/test_data.ml: Alcotest Array Corpus Fun Orion_data Orion_dsm Orion_lang Printf QCheck QCheck_alcotest Ratings Rng Sparse_features
