test/test_apps.ml: Adarev Alcotest Array Float Gbt Gen Lda List Losses Orion Orion_apps Orion_data Orion_dsm Printf QCheck QCheck_alcotest Sgd_mf Slr
