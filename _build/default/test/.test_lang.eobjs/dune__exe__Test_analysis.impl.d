test/test_analysis.ml: Alcotest Array Depanalysis Depvec Gen List Orion_analysis Orion_lang Plan Prefetch Printf QCheck QCheck_alcotest Refs String Subscript Unimodular
