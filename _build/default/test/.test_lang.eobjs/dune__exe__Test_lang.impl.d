test/test_lang.ml: Alcotest Array Ast Check Interp Lexer List Orion_apps Orion_lang Parser Pretty Printf QCheck QCheck_alcotest String Value
