test/test_stencil.ml: Alcotest Array Float List Orion Orion_apps Printf Stencil
