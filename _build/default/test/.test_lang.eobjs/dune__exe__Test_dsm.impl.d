test/test_dsm.ml: Accumulator Alcotest Array Buffer Dist_array Filename Gen List Orion_dsm Orion_lang Orion_sim Param_server Partitioner Pipeline QCheck QCheck_alcotest String Sys
