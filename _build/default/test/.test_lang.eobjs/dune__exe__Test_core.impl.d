test/test_core.ml: Alcotest Array Cluster Dist_array Executor Interp List Orion Parser Plan Prefetch Printf Refs String Value
