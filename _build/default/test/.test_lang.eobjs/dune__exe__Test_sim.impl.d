test/test_sim.ml: Alcotest Array Cluster Cost_model Gen List Orion_sim Printf QCheck QCheck_alcotest Recorder
