(* Tests for the synthetic dataset generators and the deterministic
   RNG. *)

open Orion_data

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check (float 0.0)) "same stream" (Rng.float a) (Rng.float b)
  done

let test_rng_uniform_range () =
  QCheck.Test.make ~count:500 ~name:"rng float in [0,1), int in [0,n)"
    QCheck.(int_range 1 1000)
    (fun n ->
      let rng = Rng.create n in
      let f = Rng.float rng in
      let i = Rng.int rng n in
      f >= 0.0 && f < 1.0 && i >= 0 && i < n)

let test_rng_gaussian_moments () =
  let rng = Rng.create 7 in
  let n = 20000 in
  let sum = ref 0.0 and sq = ref 0.0 in
  for _ = 1 to n do
    let x = Rng.gaussian rng in
    sum := !sum +. x;
    sq := !sq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean ~ 0" true (abs_float mean < 0.05);
  Alcotest.(check bool) "var ~ 1" true (abs_float (var -. 1.0) < 0.1)

let test_zipf_skew () =
  let rng = Rng.create 3 in
  let z = Rng.zipf_create ~n:100 ~s:1.0 in
  let counts = Array.make 100 0 in
  for _ = 1 to 20000 do
    let k = Rng.zipf_draw rng z in
    counts.(k) <- counts.(k) + 1
  done;
  (* rank 0 must dominate rank 50 roughly by factor ~51 *)
  Alcotest.(check bool) "rank 0 most frequent" true
    (counts.(0) > counts.(50) * 10);
  Alcotest.(check bool) "all in range" true
    (Array.for_all (fun c -> c >= 0) counts)

let test_permutation_is_permutation () =
  QCheck.Test.make ~count:100 ~name:"permutation is a bijection"
    QCheck.(int_range 1 500)
    (fun n ->
      let rng = Rng.create n in
      let p = Rng.permutation rng n in
      let seen = Array.make n false in
      Array.iter (fun i -> seen.(i) <- true) p;
      Array.for_all Fun.id seen)

(* ------------------------------------------------------------------ *)

let test_ratings_properties () =
  let d =
    Ratings.generate ~num_users:50 ~num_items:40 ~num_ratings:300 ()
  in
  Alcotest.(check int) "requested count" 300 d.num_ratings;
  Alcotest.(check (array int)) "dims" [| 50; 40 |]
    (Orion_dsm.Dist_array.dims d.ratings);
  Orion_dsm.Dist_array.iter
    (fun key v ->
      Alcotest.(check bool) "rating in [1,5]" true (v >= 1.0 && v <= 5.0);
      Alcotest.(check bool) "key in range" true
        (key.(0) < 50 && key.(1) < 40))
    d.ratings

let test_ratings_deterministic () =
  let d1 = Ratings.generate ~num_users:20 ~num_items:20 ~num_ratings:50 () in
  let d2 = Ratings.generate ~num_users:20 ~num_items:20 ~num_ratings:50 () in
  let e1 = Orion_dsm.Dist_array.entries d1.ratings in
  let e2 = Orion_dsm.Dist_array.entries d2.ratings in
  Alcotest.(check bool) "same dataset" true (e1 = e2)

let test_ratings_skewed () =
  let d =
    Ratings.generate ~num_users:100 ~num_items:100 ~num_ratings:2000
      ~item_skew:1.2 ()
  in
  let counts = Orion_dsm.Partitioner.histogram d.ratings ~dim:1 in
  Array.sort compare counts;
  let hottest = counts.(99) and median = counts.(50) in
  Alcotest.(check bool)
    (Printf.sprintf "popularity skew (%d vs %d)" hottest median)
    true
    (hottest > 4 * max median 1)

let test_corpus_properties () =
  let c = Corpus.generate ~num_docs:60 ~vocab_size:200 ~avg_doc_len:30 () in
  Alcotest.(check bool) "tokens counted" true (c.num_tokens > 60 * 10);
  let total =
    Orion_dsm.Dist_array.fold (fun acc _ v -> acc +. v) 0.0 c.tokens
  in
  Alcotest.(check (float 0.01)) "entry counts sum to token count"
    (float_of_int c.num_tokens) total;
  Orion_dsm.Dist_array.iter
    (fun key v ->
      Alcotest.(check bool) "count positive" true (v >= 1.0);
      Alcotest.(check bool) "in range" true (key.(0) < 60 && key.(1) < 200))
    c.tokens

let test_sparse_features_properties () =
  let d =
    Sparse_features.generate ~num_samples:100 ~num_features:500
      ~nnz_per_sample:10 ()
  in
  Alcotest.(check int) "sample count" 100
    (Orion_dsm.Dist_array.count d.samples);
  Alcotest.(check bool) "avg nnz near request" true
    (d.avg_nnz >= 5.0 && d.avg_nnz <= 20.0);
  let pos = ref 0 in
  Orion_dsm.Dist_array.iter
    (fun _ (s : Sparse_features.sample) ->
      if s.label = 1.0 then incr pos;
      Alcotest.(check bool) "label binary" true
        (s.label = 0.0 || s.label = 1.0);
      Alcotest.(check bool) "features sorted unique" true
        (let ok = ref true in
         for k = 1 to Array.length s.features - 1 do
           if s.features.(k) <= s.features.(k - 1) then ok := false
         done;
         !ok);
      Array.iter
        (fun f -> Alcotest.(check bool) "feature in range" true (f < 500))
        s.features)
    d.samples;
  (* labels are not degenerate *)
  Alcotest.(check bool) "both classes present" true (!pos > 5 && !pos < 95)

let test_sample_to_value () =
  let s =
    Sparse_features.{ label = 1.0; features = [| 2; 7 |]; values = [| 1.0; 1.0 |] }
  in
  match Sparse_features.sample_to_value s with
  | Orion_lang.Value.Vtuple
      [ Vfloat 1.0; Vvec idx; Vvec [| 1.0; 1.0 |] ] ->
      (* 1-based indices for OrionScript *)
      Alcotest.(check (array (float 0.0))) "indices 1-based" [| 3.0; 8.0 |] idx
  | _ -> Alcotest.fail "bad value shape"

let () =
  let tc = Alcotest.test_case in
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "data"
    [
      ( "rng",
        [
          tc "deterministic" `Quick test_rng_deterministic;
          qc (test_rng_uniform_range ());
          tc "gaussian moments" `Quick test_rng_gaussian_moments;
          tc "zipf skew" `Quick test_zipf_skew;
          qc (test_permutation_is_permutation ());
        ] );
      ( "datasets",
        [
          tc "ratings properties" `Quick test_ratings_properties;
          tc "ratings deterministic" `Quick test_ratings_deterministic;
          tc "ratings skewed" `Quick test_ratings_skewed;
          tc "corpus properties" `Quick test_corpus_properties;
          tc "sparse features" `Quick test_sparse_features_properties;
          tc "sample to value" `Quick test_sample_to_value;
        ] );
    ]
