(* Tests for the ML applications: losses, AdaRevision, SGD MF, LDA,
   SLR, GBT — including that each app's OrionScript source analyzes to
   the parallelization Table 2 reports. *)

open Orion_apps

(* ------------------------------------------------------------------ *)
(* Losses and special functions                                        *)
(* ------------------------------------------------------------------ *)

let test_sigmoid () =
  Alcotest.(check (float 1e-12)) "sigmoid 0" 0.5 (Losses.sigmoid 0.0);
  Alcotest.(check bool) "monotone" true
    (Losses.sigmoid 2.0 > Losses.sigmoid 1.0);
  Alcotest.(check bool) "stable at -1000" true
    (Losses.sigmoid (-1000.0) >= 0.0);
  Alcotest.(check bool) "stable at 1000" true (Losses.sigmoid 1000.0 <= 1.0)

let test_log_loss () =
  Alcotest.(check (float 1e-9)) "perfect prediction" 0.0
    (Losses.log_loss ~label:1.0 ~p:(1.0 -. 1e-12));
  Alcotest.(check bool) "bad prediction is costly" true
    (Losses.log_loss ~label:1.0 ~p:0.01 > 4.0);
  Alcotest.(check bool) "clipped, finite" true
    (Float.is_finite (Losses.log_loss ~label:0.0 ~p:1.0))

let test_lgamma_known_values () =
  let check name expected x =
    Alcotest.(check (float 1e-9)) name expected (Losses.lgamma x)
  in
  check "lgamma 1" 0.0 1.0;
  check "lgamma 2" 0.0 2.0;
  check "lgamma 5 = log 24" (log 24.0) 5.0;
  check "lgamma 0.5 = log sqrt(pi)" (0.5 *. log Float.pi) 0.5

let test_lgamma_recurrence_qcheck () =
  QCheck.Test.make ~count:300 ~name:"lgamma(x+1) = lgamma(x) + log x"
    QCheck.(float_range 0.1 50.0)
    (fun x ->
      let lhs = Losses.lgamma (x +. 1.0) in
      let rhs = Losses.lgamma x +. log x in
      abs_float (lhs -. rhs) < 1e-8 *. (1.0 +. abs_float lhs))

(* ------------------------------------------------------------------ *)
(* AdaRevision                                                         *)
(* ------------------------------------------------------------------ *)

let test_adarev_moves_against_gradient () =
  let opt = Adarev.create ~size:4 ~alpha:1.0 in
  let params = Array.make 4 0.0 in
  ignore (Adarev.apply_fresh opt ~params ~i:2 ~g:1.0);
  Alcotest.(check bool) "param decreased for positive gradient" true
    (params.(2) < 0.0);
  ignore (Adarev.apply_fresh opt ~params ~i:2 ~g:(-1.0));
  Alcotest.(check bool) "moves back up" true (params.(2) > -1.1)

let test_adarev_step_size_shrinks () =
  let opt = Adarev.create ~size:1 ~alpha:1.0 in
  let params = Array.make 1 0.0 in
  let d1 = abs_float (Adarev.apply_fresh opt ~params ~i:0 ~g:1.0) in
  let d2 = abs_float (Adarev.apply_fresh opt ~params ~i:0 ~g:1.0) in
  let d3 = abs_float (Adarev.apply_fresh opt ~params ~i:0 ~g:1.0) in
  Alcotest.(check bool) "steps shrink" true (d1 > d2 && d2 > d3)

let test_adarev_delay_shrinks_step () =
  (* a delayed gradient (other updates landed in between) must take a
     smaller step than a fresh one with the same statistics *)
  let fresh = Adarev.create ~size:1 ~alpha:1.0 in
  let delayed = Adarev.create ~size:1 ~alpha:1.0 in
  let pf = Array.make 1 0.0 and pd = Array.make 1 0.0 in
  (* both see a first update *)
  ignore (Adarev.apply_fresh fresh ~params:pf ~i:0 ~g:1.0);
  ignore (Adarev.apply_fresh delayed ~params:pd ~i:0 ~g:1.0);
  (* fresh: g_old is current; delayed: g_old from before the first
     update (missed progress = 1.0) *)
  let df = Adarev.apply fresh ~params:pf ~i:0 ~g:1.0 ~g_old:fresh.Adarev.g_bck.(0) in
  let dd = Adarev.apply delayed ~params:pd ~i:0 ~g:1.0 ~g_old:0.0 in
  Alcotest.(check bool)
    (Printf.sprintf "delayed step (%.4f) smaller than fresh (%.4f)" dd df)
    true
    (abs_float dd < abs_float df)

let test_adarev_version_tracking () =
  let opt = Adarev.create ~size:2 ~alpha:0.5 in
  let params = Array.make 2 0.0 in
  Alcotest.(check (float 0.0)) "initial version" 0.0 (Adarev.read_version opt 0);
  ignore (Adarev.apply_fresh opt ~params ~i:0 ~g:2.0);
  Alcotest.(check (float 1e-12)) "version accumulates" 2.0
    (Adarev.read_version opt 0)

(* ------------------------------------------------------------------ *)
(* SGD MF                                                              *)
(* ------------------------------------------------------------------ *)

let mf_data () =
  Orion_data.Ratings.generate ~num_users:40 ~num_items:30 ~num_ratings:400
    ~rank_truth:4 ()

let test_mf_serial_converges () =
  let data = mf_data () in
  let model =
    Sgd_mf.init_model ~rank:8 ~num_users:data.num_users
      ~num_items:data.num_items ()
  in
  let traj =
    Sgd_mf.train_serial model ~ratings:data.ratings ~step_size:0.02 ~epochs:15
  in
  Alcotest.(check bool)
    (Printf.sprintf "loss %.3f -> %.3f" traj.(0) traj.(15))
    true
    (traj.(15) < traj.(0) /. 5.0);
  (* trajectory is (mostly) decreasing *)
  Alcotest.(check bool) "monotone-ish" true (traj.(15) <= traj.(5))

let test_mf_adarev_converges () =
  let data = mf_data () in
  let am =
    Sgd_mf.init_adarev ~rank:8 ~num_users:data.num_users
      ~num_items:data.num_items ~alpha:0.15 ()
  in
  let before = Sgd_mf.loss am.Sgd_mf.base data.ratings in
  for _ = 1 to 15 do
    Orion_dsm.Dist_array.iter
      (fun key v -> Sgd_mf.body_adarev am ~worker:0 ~key ~value:v)
      data.ratings
  done;
  let after = Sgd_mf.loss am.Sgd_mf.base data.ratings in
  Alcotest.(check bool)
    (Printf.sprintf "adarev loss %.3f -> %.3f" before after)
    true (after < before /. 3.0)

let test_mf_script_analyzes_2d () =
  let session =
    Orion.create_session ~num_machines:2 ~workers_per_machine:2 ()
  in
  let data = mf_data () in
  let model =
    Sgd_mf.init_model ~rank:8 ~num_users:data.num_users
      ~num_items:data.num_items ()
  in
  Sgd_mf.register_arrays session ~ratings:data.ratings model;
  (match Orion.analyze_script session Sgd_mf.script with
  | [ plan ] -> (
      match plan.Orion.Plan.strategy with
      | Orion.Plan.Two_d _ ->
          Alcotest.(check bool) "unordered" false plan.Orion.Plan.ordered
      | s -> Alcotest.fail (Orion.Plan.strategy_to_string s))
  | _ -> Alcotest.fail "expected one loop");
  (* ordered variant *)
  match Orion.analyze_script session (Sgd_mf.script_src ~ordered:true) with
  | [ plan ] -> Alcotest.(check bool) "ordered flag" true plan.Orion.Plan.ordered
  | _ -> Alcotest.fail "expected one loop"

(* ------------------------------------------------------------------ *)
(* LDA                                                                 *)
(* ------------------------------------------------------------------ *)

let lda_corpus () =
  Orion_data.Corpus.generate ~num_docs:40 ~vocab_size:120 ~avg_doc_len:25
    ~num_topics_truth:5 ()

(* count-consistency invariant of collapsed Gibbs state *)
let check_lda_invariants m ~num_tokens =
  let dt_sum =
    Array.fold_left
      (fun acc row -> Array.fold_left ( +. ) acc row)
      0.0 m.Lda.doc_topic
  in
  let wt_sum =
    Array.fold_left
      (fun acc row -> Array.fold_left ( +. ) acc row)
      0.0 m.Lda.word_topic
  in
  let tot_sum = Array.fold_left ( +. ) 0.0 m.Lda.totals in
  let n = float_of_int num_tokens in
  Alcotest.(check (float 0.01)) "doc-topic sums to tokens" n dt_sum;
  Alcotest.(check (float 0.01)) "word-topic sums to tokens" n wt_sum;
  Alcotest.(check (float 0.01)) "totals sum to tokens" n tot_sum;
  Array.iter
    (fun row ->
      Array.iter
        (fun c -> Alcotest.(check bool) "non-negative counts" true (c >= 0.0))
        row)
    m.Lda.word_topic

let test_lda_serial_improves_likelihood () =
  let corpus = lda_corpus () in
  let m = Lda.init_model ~num_topics:5 ~corpus () in
  let traj = Lda.train_serial m ~tokens:corpus.tokens ~epochs:10 in
  Alcotest.(check bool)
    (Printf.sprintf "loglik %.1f -> %.1f" traj.(0) traj.(10))
    true
    (traj.(10) > traj.(0));
  check_lda_invariants m ~num_tokens:corpus.num_tokens

let test_lda_invariants_preserved_by_body () =
  let corpus = lda_corpus () in
  let m = Lda.init_model ~num_topics:5 ~corpus () in
  (* run with per-worker totals views and merge, as the Orion runner
     does — invariants must still hold after the merge *)
  let views = Array.init 3 (fun _ -> Array.copy m.Lda.totals) in
  let deltas = Array.init 3 (fun _ -> Array.make 5 0.0) in
  let widx = ref 0 in
  Orion_dsm.Dist_array.iter
    (fun key _ ->
      let w = !widx mod 3 in
      incr widx;
      Lda.body_with_views m
        ~wt:m.Lda.word_topic.(key.(1))
        ~totals:views.(w)
        ~on_update:(fun ~word:_ ~topic ~delta ->
          deltas.(w).(topic) <- deltas.(w).(topic) +. delta)
        ~key)
    corpus.tokens;
  for w = 0 to 2 do
    for z = 0 to 4 do
      m.Lda.totals.(z) <- m.Lda.totals.(z) +. deltas.(w).(z)
    done
  done;
  check_lda_invariants m ~num_tokens:corpus.num_tokens

let test_lda_script_analyzes_2d_with_buffer () =
  let session =
    Orion.create_session ~num_machines:2 ~workers_per_machine:2 ()
  in
  (* realistic shape: many more documents than vocabulary entries, so
     the (smaller) word-topic matrix is the one that rotates *)
  let corpus =
    Orion_data.Corpus.generate ~num_docs:200 ~vocab_size:50 ~avg_doc_len:10
      ~num_topics_truth:5 ()
  in
  let m = Lda.init_model ~num_topics:5 ~corpus () in
  Lda.register_arrays session ~tokens:corpus.tokens m;
  match Orion.analyze_script session Lda.script with
  | [ plan ] -> (
      (match plan.Orion.Plan.strategy with
      | Orion.Plan.Two_d { space_dim = 0; time_dim = 1 } -> ()
      | s -> Alcotest.fail (Orion.Plan.strategy_to_string s));
      (* word_topic rotates with the time dimension *)
      match List.assoc "word_topic" plan.Orion.Plan.placements with
      | Orion.Plan.Rotated _ -> ()
      | p -> Alcotest.fail (Orion.Plan.placement_to_string p))
  | _ -> Alcotest.fail "expected one loop"

(* ------------------------------------------------------------------ *)
(* SLR                                                                 *)
(* ------------------------------------------------------------------ *)

let slr_data () =
  Orion_data.Sparse_features.generate ~num_samples:300 ~num_features:400
    ~nnz_per_sample:12 ()

let test_slr_serial_converges () =
  let data = slr_data () in
  let model = Slr.init_model ~num_features:data.num_features () in
  let traj = Slr.train_serial model ~data ~step_size:0.5 ~epochs:8 in
  Alcotest.(check bool)
    (Printf.sprintf "logloss %.4f -> %.4f" traj.(0) traj.(8))
    true
    (traj.(8) < traj.(0) *. 0.7)

let test_slr_script_analyzes_1d_prefetch () =
  let session =
    Orion.create_session ~num_machines:2 ~workers_per_machine:2 ()
  in
  let data = slr_data () in
  let model = Slr.init_model ~num_features:data.num_features () in
  Slr.register_arrays session ~data model;
  match Orion.analyze_script session Slr.script with
  | [ plan ] ->
      (match plan.Orion.Plan.strategy with
      | Orion.Plan.One_d { space_dim = 0 } -> ()
      | s -> Alcotest.fail (Orion.Plan.strategy_to_string s));
      Alcotest.(check (list string)) "w prefetched" [ "w" ]
        plan.Orion.Plan.prefetch_arrays
  | _ -> Alcotest.fail "expected one loop"

(* ------------------------------------------------------------------ *)
(* GBT                                                                 *)
(* ------------------------------------------------------------------ *)

let test_gbt_learns_nonlinear_concept () =
  let data = Gbt.synthetic ~num_samples:400 ~num_features:6 () in
  let model, traj = Gbt.train ~params:Gbt.default_params data in
  Alcotest.(check bool)
    (Printf.sprintf "logloss %.4f -> %.4f" traj.(0)
       traj.(Gbt.default_params.num_trees))
    true
    (traj.(Gbt.default_params.num_trees) < traj.(0) /. 2.0);
  let acc = Gbt.accuracy model data in
  Alcotest.(check bool) (Printf.sprintf "accuracy %.3f" acc) true (acc > 0.85)

let test_gbt_parallel_scan_equivalent () =
  let data = Gbt.synthetic ~num_samples:200 ~num_features:5 () in
  let calls = ref 0 in
  let scan fs find =
    incr calls;
    List.map find fs
  in
  let _, t1 = Gbt.train ~parallel_feature_scan:scan data in
  let _, t2 = Gbt.train data in
  Alcotest.(check bool) "scan used" true (!calls > 0);
  Alcotest.(check (float 1e-12)) "same final loss"
    t2.(Gbt.default_params.num_trees)
    t1.(Gbt.default_params.num_trees)

let test_gbt_script_analyzes_1d () =
  let session =
    Orion.create_session ~num_machines:1 ~workers_per_machine:2 ()
  in
  Orion.register_meta session ~name:"feature_index" ~dims:[| 50 |] ~count:50 ();
  Orion.register_meta session ~name:"split_gain" ~dims:[| 50 |] ();
  match Orion.analyze_script session Gbt.script with
  | [ plan ] -> (
      match plan.Orion.Plan.strategy with
      | Orion.Plan.One_d { space_dim = 0 } -> ()
      | s -> Alcotest.fail (Orion.Plan.strategy_to_string s))
  | _ -> Alcotest.fail "expected one loop"

let test_gbt_prediction_bounds () =
  QCheck.Test.make ~count:100 ~name:"gbt predictions are probabilities"
    QCheck.(list_of_size (Gen.return 6) (float_range 0.0 1.0))
    (fun xs ->
      let data = Gbt.synthetic ~num_samples:100 ~num_features:6 () in
      let model, _ =
        Gbt.train ~params:{ Gbt.default_params with num_trees = 3 } data
      in
      let p = Gbt.predict model (Array.of_list xs) in
      p >= 0.0 && p <= 1.0)

let () =
  let tc = Alcotest.test_case in
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "apps"
    [
      ( "losses",
        [
          tc "sigmoid" `Quick test_sigmoid;
          tc "log loss" `Quick test_log_loss;
          tc "lgamma values" `Quick test_lgamma_known_values;
          qc (test_lgamma_recurrence_qcheck ());
        ] );
      ( "adarev",
        [
          tc "moves against gradient" `Quick test_adarev_moves_against_gradient;
          tc "step size shrinks" `Quick test_adarev_step_size_shrinks;
          tc "delay shrinks step" `Quick test_adarev_delay_shrinks_step;
          tc "version tracking" `Quick test_adarev_version_tracking;
        ] );
      ( "sgd_mf",
        [
          tc "serial converges" `Quick test_mf_serial_converges;
          tc "adarev converges" `Quick test_mf_adarev_converges;
          tc "script -> 2D" `Quick test_mf_script_analyzes_2d;
        ] );
      ( "lda",
        [
          tc "serial improves loglik" `Quick test_lda_serial_improves_likelihood;
          tc "invariants with views" `Quick test_lda_invariants_preserved_by_body;
          tc "script -> 2D + buffer" `Quick test_lda_script_analyzes_2d_with_buffer;
        ] );
      ( "slr",
        [
          tc "serial converges" `Quick test_slr_serial_converges;
          tc "script -> 1D + prefetch" `Quick test_slr_script_analyzes_1d_prefetch;
        ] );
      ( "gbt",
        [
          tc "learns nonlinear concept" `Quick test_gbt_learns_nonlinear_concept;
          tc "parallel scan equivalent" `Quick test_gbt_parallel_scan_equivalent;
          tc "script -> 1D" `Quick test_gbt_script_analyzes_1d;
          qc (test_gbt_prediction_bounds ());
        ] );
    ]
