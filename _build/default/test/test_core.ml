(* End-to-end tests of the Orion facade: analyze + compile + execute,
   and whole interpreted driver programs (the paper's Fig. 5 workflow). *)

open Orion

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let mk_session ?(machines = 2) ?(wpm = 2) () =
  create_session ~num_machines:machines ~workers_per_machine:wpm ()

(* planted low-rank ratings matrix *)
let mk_ratings ?(name = "ratings") rows cols rank density_mod =
  let state = ref 99 in
  let randf () =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    float_of_int (!state mod 1000) /. 1000.0
  in
  let wt = Array.init rank (fun _ -> Array.init rows (fun _ -> randf ())) in
  let ht = Array.init rank (fun _ -> Array.init cols (fun _ -> randf ())) in
  let entries = ref [] in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      if (i + (3 * j)) mod density_mod = 0 then begin
        let v = ref 0.0 in
        for k = 0 to rank - 1 do
          v := !v +. (wt.(k).(i) *. ht.(k).(j))
        done;
        entries := ([| i; j |], !v) :: !entries
      end
    done
  done;
  Dist_array.of_entries ~name ~dims:[| rows; cols |] ~default:0.0 !entries

let sgd_mf_script =
  {|
step_size = 0.1
err = 0.0
for iter = 1:8
  @parallel_for for (key, rv) in ratings
    W_row = W[:, key[1]]
    H_row = H[:, key[2]]
    pred = dot(W_row, H_row)
    diff = rv - pred
    W_grad = -2.0 * diff * H_row
    H_grad = -2.0 * diff * W_row
    W[:, key[1]] = W_row - W_grad * step_size
    H[:, key[2]] = H_row - H_grad * step_size
  end
end
err = 0.0
@parallel_for for (key, rv) in ratings
  W_row = W[:, key[1]]
  H_row = H[:, key[2]]
  pred = dot(W_row, H_row)
  err += abs2(rv - pred)
end
final_err = get_aggregated_value("err")
|}

let setup_mf_session ?machines ?wpm () =
  let rows = 20 and cols = 16 and rank = 3 in
  let session = mk_session ?machines ?wpm () in
  let ratings = mk_ratings rows cols rank 4 in
  let w = Dist_array.fill_dense ~name:"W" ~dims:[| rank; rows |] 0.1 in
  let h = Dist_array.fill_dense ~name:"H" ~dims:[| rank; cols |] 0.1 in
  register session ratings;
  register session w;
  register session h;
  (session, ratings, w, h)

(* ------------------------------------------------------------------ *)
(* Analysis through the facade                                         *)
(* ------------------------------------------------------------------ *)

let test_analyze_script_mf () =
  let session, _, _, _ = setup_mf_session () in
  match analyze_script session sgd_mf_script with
  | [ train_plan; eval_plan ] ->
      (match train_plan.Plan.strategy with
      | Plan.Two_d _ -> ()
      | s -> Alcotest.fail ("train loop: " ^ Plan.strategy_to_string s));
      Alcotest.(check bool) "unordered" false train_plan.Plan.ordered;
      (* the evaluation loop only reads W and H: no deps at all *)
      (match eval_plan.Plan.strategy with
      | Plan.One_d _ | Plan.Two_d _ -> ()
      | s -> Alcotest.fail ("eval loop: " ^ Plan.strategy_to_string s));
      Alcotest.(check int) "eval loop has no dependence vectors" 0
        (List.length eval_plan.Plan.dep_vectors)
  | plans ->
      Alcotest.fail
        (Printf.sprintf "expected 2 loops, got %d" (List.length plans))

let test_analysis_memoized () =
  let session, _, _, _ = setup_mf_session () in
  let program = Parser.parse_program sgd_mf_script in
  let loops = Refs.find_parallel_loops program in
  let loop = List.hd loops in
  let p1 = analyze_loop session loop in
  let p2 = analyze_loop session loop in
  Alcotest.(check bool) "same plan object" true (p1 == p2)

let test_explain_output () =
  let session, _, _, _ = setup_mf_session () in
  let plan = List.hd (analyze_script session sgd_mf_script) in
  let text = Plan.explain_to_string plan in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        ("explain mentions " ^ needle)
        true
        (contains ~sub:needle text))
    [ "Iteration space: ratings"; "Dependence vectors"; "2D"; "step_size" ]

(* ------------------------------------------------------------------ *)
(* Interpreted end-to-end run                                          *)
(* ------------------------------------------------------------------ *)

let interp_loss env = Value.to_float (Interp.get_var env "final_err")

let test_run_script_mf_converges () =
  let session, ratings, _, _ = setup_mf_session () in
  let env, stats = run_script session sgd_mf_script in
  let final = interp_loss env in
  (* initial loss with all-0.1 factors *)
  let initial =
    Dist_array.fold
      (fun acc _ v -> acc +. ((v -. (0.1 *. 0.1 *. 3.0)) ** 2.0))
      0.0 ratings
  in
  Alcotest.(check bool)
    (Printf.sprintf "converged: %.5f << %.5f" final initial)
    true
    (final < initial /. 10.0);
  (* 8 training passes + 1 eval pass *)
  Alcotest.(check int) "9 loop executions" 9 (List.length stats);
  List.iter
    (fun s ->
      Alcotest.(check int) "each pass covers all entries"
        (Dist_array.count ratings) s.Executor.entries_executed)
    stats

let test_run_script_matches_serial_quality () =
  (* the 4-worker scheduled run must reach the quality of the 1-worker
     (serial) run: serializability at work *)
  let session, _, _, _ = setup_mf_session () in
  let env_dist, _ = run_script session sgd_mf_script in
  let dist_loss = interp_loss env_dist in
  let session_serial, _, _, _ = setup_mf_session ~machines:1 ~wpm:1 () in
  let env_serial, _ = run_script session_serial sgd_mf_script in
  let serial_loss = interp_loss env_serial in
  Alcotest.(check bool)
    (Printf.sprintf "distributed %.6f ~ serial %.6f" dist_loss serial_loss)
    true
    (dist_loss < (serial_loss *. 1.25) +. 1e-9)

let test_run_script_charges_time () =
  let session, _, _, _ = setup_mf_session () in
  let _ = run_script session sgd_mf_script in
  Alcotest.(check bool) "cluster time advanced" true
    (Cluster.now session.cluster > 0.0)

let test_accumulator_in_script () =
  let session = mk_session () in
  let data =
    Dist_array.of_entries ~name:"data" ~dims:[| 10 |] ~default:0.0
      (List.init 10 (fun i -> ([| i |], float_of_int (i + 1))))
  in
  register session data;
  let env, _ =
    run_script session
      {|
total = 0.0
@parallel_for for (k, v) in data
  total += v
end
result = get_aggregated_value("total")
reset_accumulator("total")
|}
  in
  Alcotest.(check (float 1e-9)) "sum 1..10" 55.0
    (Value.to_float (Interp.get_var env "result"));
  Alcotest.(check (float 1e-9)) "reset" 0.0
    (Value.to_float (Interp.get_var env "total"))

(* ------------------------------------------------------------------ *)
(* Prefetch through the facade                                         *)
(* ------------------------------------------------------------------ *)

let test_prefetch_records_match_actual_reads () =
  (* The synthesized prefetch program must record exactly the DistArray
     elements the real loop body reads. *)
  let session = mk_session () in
  let w =
    Dist_array.init_dense ~name:"w" ~dims:[| 20 |]
      ~f:(fun k -> float_of_int k.(0))
  in
  register session w;
  (* branch condition depends only on the loop key: the synthesized
     program follows control flow exactly *)
  let body_src =
    "i1 = key[1]\nx = w[i1]\nif i1 > 8\n  y = w[i1 + 1]\nend"
  in
  let body = Parser.parse_program body_src in
  let generated, stats =
    Prefetch.synthesize ~dist_vars:[ "w" ] ~targets:[ "w" ] body
  in
  Alcotest.(check int) "two record sites" 2 stats.Prefetch.recorded;
  (* key = [| 9 |] (1-based subscript 10 > 8): both reads happen *)
  let recorded =
    run_prefetch_program session ~generated ~key_var:"key" ~value_var:"v"
      ~key:[| 9 |] ~value:(Value.Vfloat 0.0) ~bindings:[]
  in
  let keys = List.map (fun (_, k) -> k.(0)) recorded in
  Alcotest.(check (list int)) "records w[9] and w[10] (0-based)" [ 9; 10 ] keys;
  (* for a small key the branch is not taken: only one read *)
  let recorded2 =
    run_prefetch_program session ~generated ~key_var:"key" ~value_var:"v"
      ~key:[| 2 |] ~value:(Value.Vfloat 0.0) ~bindings:[]
  in
  Alcotest.(check int) "one read" 1 (List.length recorded2)

let test_prefetch_tainted_condition_over_approximates () =
  (* when the branch condition itself reads a DistArray, the prefetch
     program cannot evaluate it and records both branches *)
  let session = mk_session () in
  let w =
    Dist_array.init_dense ~name:"w" ~dims:[| 20 |]
      ~f:(fun k -> float_of_int k.(0))
  in
  register session w;
  let body =
    Parser.parse_program
      "i1 = key[1]\nx = w[i1]\nif x > 5.0\n  y = w[i1 + 1]\nend"
  in
  let generated, _ =
    Prefetch.synthesize ~dist_vars:[ "w" ] ~targets:[ "w" ] body
  in
  (* even for a key whose branch would not be taken, both candidate
     reads are prefetched (sound over-approximation) *)
  let recorded =
    run_prefetch_program session ~generated ~key_var:"key" ~value_var:"v"
      ~key:[| 2 |] ~value:(Value.Vfloat 0.0) ~bindings:[]
  in
  Alcotest.(check int) "both branches prefetched" 2 (List.length recorded)

(* ------------------------------------------------------------------ *)
(* Native compile/execute path                                         *)
(* ------------------------------------------------------------------ *)

let test_native_compile_execute () =
  let session, ratings, _, _ = setup_mf_session () in
  let plan = List.hd (analyze_script session sgd_mf_script) in
  let compiled = compile session ~plan ~iter:ratings () in
  Alcotest.(check bool) "has rotated bytes" true
    (compiled.rotated_bytes_per_partition > 0.0);
  let count = ref 0 in
  let stats =
    execute session compiled
      ~body:(fun ~worker:_ ~key:_ ~value:_ -> incr count)
      ()
  in
  Alcotest.(check int) "all entries" (Dist_array.count ratings) !count;
  Alcotest.(check int) "stats agree" !count stats.Executor.entries_executed

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "core"
    [
      ( "analysis",
        [
          tc "analyze mf script" `Quick test_analyze_script_mf;
          tc "memoized" `Quick test_analysis_memoized;
          tc "explain" `Quick test_explain_output;
        ] );
      ( "run_script",
        [
          tc "mf converges" `Quick test_run_script_mf_converges;
          tc "matches serial" `Quick test_run_script_matches_serial_quality;
          tc "charges time" `Quick test_run_script_charges_time;
          tc "accumulators" `Quick test_accumulator_in_script;
        ] );
      ( "prefetch",
        [
          tc "records = actual reads" `Quick
            test_prefetch_records_match_actual_reads;
          tc "tainted condition over-approximates" `Quick
            test_prefetch_tainted_condition_over_approximates;
        ] );
      ( "native", [ tc "compile/execute" `Quick test_native_compile_execute ] );
    ]
