(* Tests for the systems under comparison.  These check the *shapes*
   the paper reports: dependence-aware parallelization matches serial
   per-iteration convergence; data parallelism converges slower;
   managed communication helps; STRADS matches Orion's convergence;
   TF-style minibatching converges slower and is slower per pass at
   small batch sizes; prefetching collapses SLR pass times. *)

open Orion_baselines

let mf_data =
  lazy
    (Orion_data.Ratings.generate ~num_users:60 ~num_items:48 ~num_ratings:900
       ~rank_truth:4 ())

let small_mf_config =
  {
    Orion_mf.default_config with
    num_machines = 4;
    workers_per_machine = 2;
    rank = 8;
    step_size = 0.005;
    epochs = 10;
    (* large enough that compute dominates the tiny test dataset *)
    per_entry_cost = 1e-4;
  }

(* Data parallelism sums K workers' SGD deltas per sync, which diverges
   at the serial step size (exactly the pathology the paper discusses);
   like practitioners, the baseline runs a tuned-down step. *)
let bosen_base =
  {
    Bosen_mf.default_config with
    num_machines = 4;
    workers_per_machine = 2;
    rank = 8;
    step_size = 0.005 /. 8.0;
    epochs = 10;
  }

let final t = Trajectory.final_metric t

(* ------------------------------------------------------------------ *)
(* SGD MF across systems                                               *)
(* ------------------------------------------------------------------ *)

let test_orion_mf_matches_serial () =
  let data = Lazy.force mf_data in
  let serial = Orion_mf.train_serial ~config:small_mf_config ~data () in
  let orion = (Orion_mf.train ~config:small_mf_config ~data ()).trajectory in
  Alcotest.(check bool)
    (Printf.sprintf "orion %.4f ~ serial %.4f" (final orion) (final serial))
    true
    (final orion < (final serial *. 1.3) +. 1e-9);
  (* and the 8-worker run is faster in simulated time *)
  Alcotest.(check bool)
    (Printf.sprintf "orion time %.3f < serial %.3f"
       (Trajectory.final_time orion)
       (Trajectory.final_time serial))
    true
    (Trajectory.final_time orion < Trajectory.final_time serial)

let test_bosen_dp_converges_slower_per_iteration () =
  let data = Lazy.force mf_data in
  let orion = (Orion_mf.train ~config:small_mf_config ~data ()).trajectory in
  let bosen, _ = Bosen_mf.train ~config:bosen_base ~data () in
  Alcotest.(check bool)
    (Printf.sprintf "bosen %.4f worse than orion %.4f" (final bosen)
       (final orion))
    true
    (final bosen > final orion *. 1.2)

let test_bosen_cm_improves_dp () =
  let data = Lazy.force mf_data in
  let dp, _ = Bosen_mf.train ~config:bosen_base ~data () in
  let cm, _ =
    Bosen_mf.train
      ~config:
        { bosen_base with comm_rounds = 8; bandwidth_budget_mbps = 1600.0 }
      ~data ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "CM %.4f <= DP %.4f" (final cm) (final dp))
    true
    (final cm <= final dp +. 1e-9)

let test_bosen_cm_uses_more_bandwidth () =
  let data = Lazy.force mf_data in
  let base = { bosen_base with epochs = 5 } in
  let _, rec_dp = Bosen_mf.train ~config:base ~data () in
  let _, rec_cm =
    Bosen_mf.train ~config:{ base with comm_rounds = 8 } ~data ()
  in
  Alcotest.(check bool) "CM sends more bytes" true
    (Orion_sim.Recorder.total_bytes rec_cm
    > Orion_sim.Recorder.total_bytes rec_dp)

let test_strads_matches_orion_convergence () =
  let data = Lazy.force mf_data in
  let orion =
    (Orion_mf.train
       ~config:{ small_mf_config with adarev = true; alpha = 0.1 }
       ~data ())
      .trajectory
  in
  let strads =
    Strads_mf.train
      ~config:
        {
          Strads_mf.default_config with
          num_machines = 4;
          workers_per_machine = 2;
          rank = 8;
          alpha = 0.1;
          epochs = 10;
        }
      ~data ()
  in
  let ratio = final strads /. Float.max (final orion) 1e-12 in
  Alcotest.(check bool)
    (Printf.sprintf "per-iteration quality comparable (ratio %.3f)" ratio)
    true
    (ratio > 0.5 && ratio < 2.0)

let test_tf_minibatch_converges_slower () =
  let data = Lazy.force mf_data in
  let orion = (Orion_mf.train ~config:small_mf_config ~data ()).trajectory in
  let tf =
    Tf_mf.train
      ~config:
        {
          Tf_mf.default_config with
          rank = 8;
          minibatch = 450 (* half the dataset *);
          step_size = 2.0;
          epochs = 10;
        }
      ~data ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "TF %.4f worse than Orion %.4f" (final tf) (final orion))
    true
    (final tf > final orion *. 1.2)

let test_tf_smaller_batch_slower_per_pass () =
  (* Fig 13b: smaller minibatches under-utilize the cores *)
  let cfg b = { Tf_mf.default_config with minibatch = b } in
  let t_small = Tf_mf.seconds_per_pass (cfg 1_000) ~num_entries:100_000 in
  let t_large = Tf_mf.seconds_per_pass (cfg 25_000) ~num_entries:100_000 in
  Alcotest.(check bool)
    (Printf.sprintf "batch 1k (%.3fs) slower than 25k (%.3fs)" t_small t_large)
    true (t_small > t_large)

(* ------------------------------------------------------------------ *)
(* LDA across systems                                                  *)
(* ------------------------------------------------------------------ *)

let lda_corpus =
  lazy
    (Orion_data.Corpus.generate ~num_docs:120 ~vocab_size:60 ~avg_doc_len:20
       ~num_topics_truth:5 ())

let test_orion_lda_close_to_serial () =
  let corpus = Lazy.force lda_corpus in
  let cfg =
    {
      Orion_lda.default_config with
      num_machines = 4;
      workers_per_machine = 1;
      num_topics = 5;
      epochs = 8;
    }
  in
  let serial = Orion_lda.train_serial ~config:cfg ~corpus () in
  let orion = (Orion_lda.train ~config:cfg ~corpus ()).trajectory in
  (* log-likelihoods are negative; "close" = within 2% *)
  let s = final serial and o = final orion in
  Alcotest.(check bool)
    (Printf.sprintf "orion %.1f ~ serial %.1f" o s)
    true
    (o > s -. (0.02 *. abs_float s));
  Alcotest.(check bool) "improved over init" true
    (o > List.(hd (orion.Trajectory.points)).Trajectory.metric)

let test_bosen_lda_slower_convergence () =
  let corpus = Lazy.force lda_corpus in
  let orion =
    (Orion_lda.train
       ~config:
         {
           Orion_lda.default_config with
           num_machines = 4;
           workers_per_machine = 1;
           num_topics = 5;
           epochs = 8;
         }
       ~corpus ())
      .trajectory
  in
  let bosen, _ =
    Bosen_lda.train
      ~config:
        {
          Bosen_lda.default_config with
          num_machines = 4;
          workers_per_machine = 1;
          num_topics = 5;
          epochs = 8;
        }
      ~corpus ()
  in
  (* higher loglik is better: Orion should be at least as good *)
  Alcotest.(check bool)
    (Printf.sprintf "orion %.1f >= bosen %.1f" (final orion) (final bosen))
    true
    (final orion >= final bosen -. 1e-6)

let test_strads_lda_faster_iterations_than_orion () =
  let corpus = Lazy.force lda_corpus in
  let orion =
    (Orion_lda.train
       ~config:
         {
           Orion_lda.default_config with
           num_machines = 4;
           workers_per_machine = 1;
           num_topics = 5;
           epochs = 5;
         }
       ~corpus ())
      .trajectory
  in
  let strads =
    Strads_lda.train
      ~config:
        {
          Strads_lda.default_config with
          num_machines = 4;
          workers_per_machine = 1;
          num_topics = 5;
          epochs = 5;
        }
      ~corpus ()
  in
  let o = Trajectory.avg_time_per_iteration orion in
  let s = Trajectory.avg_time_per_iteration strads in
  Alcotest.(check bool)
    (Printf.sprintf "STRADS iter %.4fs faster than Orion %.4fs" s o)
    true (s < o)

(* ------------------------------------------------------------------ *)
(* SLR prefetching                                                     *)
(* ------------------------------------------------------------------ *)

let slr_data =
  lazy
    (Orion_data.Sparse_features.generate ~num_samples:150 ~num_features:600
       ~nnz_per_sample:10 ())

let slr_cfg mode =
  {
    Slr_runner.default_config with
    mode;
    epochs = 2;
    num_machines = 1;
    workers_per_machine = 2;
  }

let test_prefetch_time_shape () =
  let data = Lazy.force slr_data in
  let r_none =
    Slr_runner.train ~config:(slr_cfg Slr_runner.No_prefetch) ~data ()
  in
  let r_pre = Slr_runner.train ~config:(slr_cfg Slr_runner.Prefetch) ~data () in
  let r_cached =
    Slr_runner.train ~config:(slr_cfg Slr_runner.Prefetch_cached) ~data ()
  in
  let t mode_result = mode_result.Slr_runner.seconds_per_pass.(1) in
  Alcotest.(check bool)
    (Printf.sprintf "no-prefetch %.4fs >> prefetch %.4fs >= cached %.4fs"
       (t r_none) (t r_pre) (t r_cached))
    true
    (t r_none > 5.0 *. t r_pre && t r_pre >= t r_cached);
  (* convergence unaffected by the access mode *)
  Alcotest.(check bool) "loss decreases" true
    (final r_pre.Slr_runner.trajectory
    < List.(hd r_pre.Slr_runner.trajectory.Trajectory.points).Trajectory.metric
    )

let test_slr_adarev_converges () =
  let data = Lazy.force slr_data in
  let r =
    Slr_runner.train
      ~config:{ (slr_cfg Slr_runner.Prefetch) with adarev = true; alpha = 0.2; epochs = 5 }
      ~data ()
  in
  let first =
    List.(hd r.Slr_runner.trajectory.Trajectory.points).Trajectory.metric
  in
  let last = final r.Slr_runner.trajectory in
  Alcotest.(check bool)
    (Printf.sprintf "adarev logloss %.4f -> %.4f" first last)
    true
    (last < first *. 0.85)

let test_prefetch_program_nonempty () =
  let data = Lazy.force slr_data in
  let r = Slr_runner.train ~config:(slr_cfg Slr_runner.Prefetch) ~data () in
  Alcotest.(check bool) "synthesized program has statements" true
    (List.length r.Slr_runner.prefetch_program > 0)

(* ------------------------------------------------------------------ *)
(* Trajectory utilities                                                *)
(* ------------------------------------------------------------------ *)

let test_trajectory_utilities () =
  let t = Trajectory.create ~system:"X" ~workload:"Y" in
  let t = Trajectory.add t ~time:0.0 ~iteration:0 ~metric:10.0 in
  let t = Trajectory.add t ~time:2.0 ~iteration:1 ~metric:5.0 in
  let t = Trajectory.add t ~time:4.0 ~iteration:2 ~metric:2.0 in
  Alcotest.(check (float 0.0)) "final metric" 2.0 (Trajectory.final_metric t);
  Alcotest.(check (float 0.0)) "final time" 4.0 (Trajectory.final_time t);
  Alcotest.(check (float 0.0)) "avg iter time" 2.0
    (Trajectory.avg_time_per_iteration t);
  (match Trajectory.time_to_reach t ~threshold:5.0 ~direction:`Below with
  | Some 2.0 -> ()
  | _ -> Alcotest.fail "time_to_reach below");
  match Trajectory.time_to_reach t ~threshold:100.0 ~direction:`Above with
  | None -> ()
  | Some _ -> Alcotest.fail "unreachable threshold"

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "baselines"
    [
      ( "sgd_mf",
        [
          tc "orion matches serial" `Quick test_orion_mf_matches_serial;
          tc "bosen dp slower" `Quick test_bosen_dp_converges_slower_per_iteration;
          tc "cm improves dp" `Quick test_bosen_cm_improves_dp;
          tc "cm more bandwidth" `Quick test_bosen_cm_uses_more_bandwidth;
          tc "strads matches orion" `Quick test_strads_matches_orion_convergence;
          tc "tf converges slower" `Quick test_tf_minibatch_converges_slower;
          tc "tf small batch slower" `Quick test_tf_smaller_batch_slower_per_pass;
        ] );
      ( "lda",
        [
          tc "orion close to serial" `Quick test_orion_lda_close_to_serial;
          tc "bosen slower" `Quick test_bosen_lda_slower_convergence;
          tc "strads faster iters" `Quick test_strads_lda_faster_iterations_than_orion;
        ] );
      ( "slr",
        [
          tc "prefetch time shape" `Quick test_prefetch_time_shape;
          tc "adarev converges" `Quick test_slr_adarev_converges;
          tc "prefetch program" `Quick test_prefetch_program_nonempty;
        ] );
      ("trajectory", [ tc "utilities" `Quick test_trajectory_utilities ]);
    ]
