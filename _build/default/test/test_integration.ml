(* Cross-library integration tests: fault tolerance (checkpoint /
   restore mid-training resumes exactly), driver-controlled
   termination (a while-loop around a parallel loop), and mixed
   parallel strategies in one program. *)

open Orion

let mk_ratings () =
  Orion_data.Ratings.generate ~num_users:24 ~num_items:20 ~num_ratings:240
    ~rank_truth:3 ()

let train_script n =
  Printf.sprintf
    {|
step_size = 0.05
for iter = 1:%d
  @parallel_for for (key, rv) in ratings
    W_row = W[:, key[1]]
    H_row = H[:, key[2]]
    diff = rv - dot(W_row, H_row)
    W[:, key[1]] = W_row + 2.0 * step_size * diff * H_row
    H[:, key[2]] = H_row + 2.0 * step_size * diff * W_row
  end
end
|}
    n

let eval_script =
  {|
err = 0.0
@parallel_for for (key, rv) in ratings
  err += abs2(rv - dot(W[:, key[1]], H[:, key[2]]))
end
final_err = get_aggregated_value("err")
|}

let rank = 4

let fresh_session data =
  let session = create_session ~num_machines:2 ~workers_per_machine:2 () in
  register session data.Orion_data.Ratings.ratings;
  session

let fresh_params () =
  ( Dist_array.fill_dense ~name:"W" ~dims:[| rank; 24 |] 0.1,
    Dist_array.fill_dense ~name:"H" ~dims:[| rank; 20 |] 0.1 )

let loss_of session =
  let env, _ = run_script session eval_script in
  Value.to_float (Interp.get_var env "final_err")

(* ------------------------------------------------------------------ *)

let test_checkpoint_resume_exact () =
  let data = mk_ratings () in
  (* uninterrupted: 8 passes *)
  let s1 = fresh_session data in
  let w1, h1 = fresh_params () in
  register s1 w1;
  register s1 h1;
  let _ = run_script s1 (train_script 8) in
  let uninterrupted = loss_of s1 in

  (* interrupted: 4 passes, checkpoint to disk, restore in a NEW
     session, 4 more passes *)
  let s2 = fresh_session data in
  let w2, h2 = fresh_params () in
  register s2 w2;
  register s2 h2;
  let _ = run_script s2 (train_script 4) in
  let wc = Filename.temp_file "orion_w" ".ckpt" in
  let hc = Filename.temp_file "orion_h" ".ckpt" in
  Dist_array.checkpoint w2 wc;
  Dist_array.checkpoint h2 hc;

  let s3 = fresh_session data in
  let w3 : float Dist_array.t = Dist_array.restore ~name:"W" wc in
  let h3 : float Dist_array.t = Dist_array.restore ~name:"H" hc in
  register s3 w3;
  register s3 h3;
  let _ = run_script s3 (train_script 4) in
  let resumed = loss_of s3 in
  Sys.remove wc;
  Sys.remove hc;
  (* restore is a sparse copy of the same values and the schedule is
     deterministic: resumption must match exactly *)
  Alcotest.(check (float 1e-9))
    "resumed training equals uninterrupted" uninterrupted resumed

let test_driver_controlled_termination () =
  (* the driver decides convergence dynamically: a while-loop around
     the parallel loop, terminating on an accumulator value *)
  let data = mk_ratings () in
  let session = fresh_session data in
  let w, h = fresh_params () in
  register session w;
  register session h;
  let env, stats =
    run_script session
      {|
step_size = 0.05
err = 1000000.0
iters = 0
while err > 150.0 && iters < 40
  @parallel_for for (key, rv) in ratings
    W_row = W[:, key[1]]
    H_row = H[:, key[2]]
    diff = rv - dot(W_row, H_row)
    W[:, key[1]] = W_row + 2.0 * step_size * diff * H_row
    H[:, key[2]] = H_row + 2.0 * step_size * diff * W_row
  end
  reset_accumulator("err")
  @parallel_for for (key, rv) in ratings
    err += abs2(rv - dot(W[:, key[1]], H[:, key[2]]))
  end
  err = get_aggregated_value("err")
  iters = iters + 1
end
|}
  in
  let err = Value.to_float (Interp.get_var env "err") in
  let iters = Value.to_float (Interp.get_var env "iters") in
  Alcotest.(check bool)
    (Printf.sprintf "converged to %.2f in %.0f iters" err iters)
    true
    (err <= 150.0 && iters < 40.0);
  Alcotest.(check bool) "ran multiple loop executions" true
    (List.length stats >= 4)

let test_mixed_strategies_one_program () =
  (* one driver program with a 2D-parallelized training loop and a
     dependence-free evaluation loop: both analyzed independently *)
  let data = mk_ratings () in
  let session = fresh_session data in
  let w, h = fresh_params () in
  register session w;
  register session h;
  let plans = analyze_script session (train_script 1 ^ eval_script) in
  (match plans with
  | [ train; eval ] ->
      (match train.Plan.strategy with
      | Plan.Two_d _ -> ()
      | s -> Alcotest.fail ("train: " ^ Plan.strategy_to_string s));
      Alcotest.(check int) "eval has no deps" 0
        (List.length eval.Plan.dep_vectors)
  | _ -> Alcotest.fail "expected two loops");
  (* and the combined program runs *)
  let env, _ = run_script session (train_script 3 ^ eval_script) in
  let err = Value.to_float (Interp.get_var env "final_err") in
  Alcotest.(check bool) "finite loss" true (Float.is_finite err)

let test_semantic_check_via_facade () =
  let data = mk_ratings () in
  let session = fresh_session data in
  let diags =
    check_script session "x = undefined_thing + 1\ny = dot(x)"
  in
  Alcotest.(check int) "two errors" 2 (List.length (Check.errors diags))

let test_run_script_deterministic () =
  let data = mk_ratings () in
  let run () =
    let session = fresh_session data in
    let w, h = fresh_params () in
    register session w;
    register session h;
    let _ = run_script session (train_script 5) in
    loss_of session
  in
  Alcotest.(check (float 0.0)) "bitwise deterministic" (run ()) (run ())

let test_interpreted_matches_native_body () =
  (* the native OCaml loop body must faithfully implement the
     OrionScript program: run both over the same derived schedule and
     compare losses (float op order differs slightly, hence the
     relative tolerance) *)
  let data = mk_ratings () in

  (* interpreted *)
  let s_interp = fresh_session data in
  let w, h = fresh_params () in
  register s_interp w;
  register s_interp h;
  let _ = run_script s_interp (train_script 6) in
  let interp_loss = loss_of s_interp in

  (* native: same plan source, same cluster shape, same schedule seed *)
  let s_native = fresh_session data in
  let model =
    Orion_apps.Sgd_mf.init_model ~rank ~num_users:24 ~num_items:20 ()
  in
  (* match the interpreted run's all-0.1 initialization *)
  Array.fill model.Orion_apps.Sgd_mf.w 0
    (Array.length model.Orion_apps.Sgd_mf.w)
    0.1;
  Array.fill model.Orion_apps.Sgd_mf.h 0
    (Array.length model.Orion_apps.Sgd_mf.h)
    0.1;
  Orion_apps.Sgd_mf.register_arrays s_native
    ~ratings:data.Orion_data.Ratings.ratings model;
  let plan = List.hd (analyze_script s_native (train_script 6)) in
  let compiled =
    compile s_native ~plan ~iter:data.Orion_data.Ratings.ratings ()
  in
  for _ = 1 to 6 do
    ignore
      (execute s_native compiled
         ~body:(Orion_apps.Sgd_mf.body model ~step_size:0.05)
         ())
  done;
  let native_loss =
    Orion_apps.Sgd_mf.loss model data.Orion_data.Ratings.ratings
  in
  let rel = abs_float (interp_loss -. native_loss) /. native_loss in
  Alcotest.(check bool)
    (Printf.sprintf "interpreted %.6f ~ native %.6f (rel %.2e)" interp_loss
       native_loss rel)
    true (rel < 1e-6)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "integration"
    [
      ( "fault-tolerance",
        [ tc "checkpoint/resume exact" `Quick test_checkpoint_resume_exact ] );
      ( "driver",
        [
          tc "while-loop termination" `Quick test_driver_controlled_termination;
          tc "mixed strategies" `Quick test_mixed_strategies_one_program;
          tc "semantic check" `Quick test_semantic_check_via_facade;
          tc "deterministic" `Quick test_run_script_deterministic;
          tc "interpreted matches native" `Quick
            test_interpreted_matches_native_body;
        ] );
    ]
